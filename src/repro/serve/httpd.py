"""HTTP front-end on the stdlib ``http.server``.

Endpoints:

* ``POST /classify`` — one table per request.  ``Content-Type:
  application/json`` bodies are CORD-19-style ``{"rows": ...}`` objects;
  anything else is parsed as CSV.  ``?model=NAME`` selects a registry
  entry (default: the first registered model).
* ``POST /classify/batch`` — JSON ``{"tables": [...]}`` (or a bare
  list); each element is a table object or a plain rows list.
* ``GET /healthz`` — liveness plus the loaded model names.
* ``GET /metrics`` — Prometheus text format: request counts, cache hit
  ratio, p50/p95 latency, per-stage timings.

:class:`ClassificationService` is the transport-independent core: it
owns the registry, the LRU result cache, the metrics, and the
micro-batching executor.  The HTTP layer just parses bodies and
serializes records, so tests (and future transports) can drive the
service directly.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.serve.batching import BatchingConfig, BatchingExecutor
from repro.serve.bulk import classify_cached, result_record, table_from_text
from repro.serve.cache import LRUCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.registry import ModelRegistry
from repro.tables.model import Table

logger = logging.getLogger("repro.serve.httpd")


class BadRequest(ValueError):
    """Client-side error — mapped to HTTP 400."""


class ClassificationService:
    """Warm models + cache + metrics + micro-batched worker pool.

    ``procs`` switches the execution backend from the in-process thread
    pool to a :class:`~repro.parallel.pool.ShardedPool` of worker
    *processes* (each with its own warm copy of the models — shared via
    the OS page cache for directory stores).  Threads overlap I/O only;
    processes shard the classification math itself across CPUs.  In
    procs mode results are cached per worker process, so the parent
    ``cache`` stays empty.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        batching: BatchingConfig | None = None,
        cache_capacity: int = 4096,
        metrics: ServiceMetrics | None = None,
        procs: int | None = None,
    ) -> None:
        if len(registry) == 0:
            raise ValueError("the service needs at least one loaded model")
        self.registry = registry
        self.metrics = metrics or ServiceMetrics()
        self.cache: LRUCache = LRUCache(cache_capacity)
        self.procs = procs
        self.workers = (batching or BatchingConfig()).workers
        for name in registry.names():
            # add_stage_hook composes with hooks the caller installed
            # (e.g. a tracing or bulk-metrics subscriber) instead of
            # clobbering them; see MetadataPipeline.add_stage_hook.
            registry.get(name).add_stage_hook(self.metrics.observe_stage)
        if procs is not None:
            from repro.parallel import ShardedPool

            specs: dict[str, str] = {}
            for name in registry.names():
                path = registry.info(name).path
                # Path("") has no parts — an in-memory registry entry
                # (ModelRegistry.add) that workers cannot re-load.
                if not path.parts:
                    raise ValueError(
                        f"model {name!r} has no on-disk path; serve --procs "
                        "needs saved models the workers can load themselves"
                    )
                specs[name] = str(path)
            self._executor: BatchingExecutor | ShardedPool = ShardedPool(
                specs,
                procs=procs,
                default=registry.default_name,
                cache_capacity=cache_capacity,
            )
        else:
            self._executor = BatchingExecutor(
                self._handle_batch, batching, on_batch=self._record_batch
            )
        self._closed = False

    def _record_batch(self, size: int) -> None:
        self.metrics.inc("batches_total")
        self.metrics.inc("batch_items_total", size)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _handle_batch(
        self, items: list[tuple[str, Table, obs.TraceContext | None]]
    ) -> list[object]:
        # Each item is handled independently: an exception instance in
        # the result list fails only that item's future (see
        # BatchingExecutor), so one bad model name or pathological table
        # can't poison unrelated requests sharing the micro-batch.
        #
        # The third tuple element is the trace context captured on the
        # submitting thread; restoring it here re-parents the per-item
        # span (and everything the pipeline emits under it) to the
        # request's trace across the thread-pool boundary.
        out: list[object] = []
        for model_name, table, ctx in items:
            with obs.use_context(ctx), obs.span(
                "serve.item", table=table.name
            ) as item_span:
                try:
                    pipeline = self.registry.get(model_name or None)
                    resolved = model_name or self.registry.default_name or ""
                    annotation, hit = classify_cached(
                        pipeline, table, self.cache, model=resolved
                    )
                except Exception as exc:  # noqa: BLE001 - per-item isolation
                    logger.warning("classification failed for %r: %s",
                                   table.name, exc)
                    out.append(exc)
                    continue
                item_span.set(model=resolved, cached=hit)
            out.append(
                result_record(table, annotation, model=resolved, cached=hit)
            )
        return out

    def classify_table(self, table: Table, *, model: str = "") -> dict:
        """Classify one table through the queue; blocks for the result.

        The caller's trace context is captured here and travels with the
        item, so spans recorded on the worker thread stay children of
        the submitting request's trace.
        """
        ctx = obs.capture_context()
        return self._executor.submit((model, table, ctx)).result()

    def classify_many(
        self, tables: Sequence[Table], *, model: str = ""
    ) -> list[dict]:
        ctx = obs.capture_context()
        futures = [self._executor.submit((model, t, ctx)) for t in tables]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        if self.procs is not None:
            # Scrape-time aggregation: fold the per-stage timings the
            # worker processes accumulated since the last scrape.
            drain = getattr(self._executor, "drain_stage_totals", None)
            if drain is not None:
                self.metrics.merge_stage_totals(drain())
        stats = self.cache.stats()
        return self.metrics.render(
            extra={
                "cache_hits_total": stats.hits,
                "cache_misses_total": stats.misses,
                "cache_hit_ratio": stats.hit_ratio,
                "cache_size": stats.size,
                "models_loaded": len(self.registry),
                "workers": self.workers,
                "procs": self.procs if self.procs is not None else 0,
            }
        )

    def health(self) -> dict:
        return {
            "status": "ok",
            "models": self.registry.names(),
            "default": self.registry.default_name,
        }

    def close(self) -> None:
        """Drain in-flight requests, then stop the worker pool."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(drain=True)


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

def _parse_table(body: bytes, content_type: str, name: str) -> Table:
    text = body.decode("utf-8", errors="replace")
    if not text.strip():
        raise BadRequest("empty request body")
    if "json" in content_type:
        try:
            return table_from_text(text, suffix=".json", name=name)
        except (ValueError, KeyError) as exc:
            raise BadRequest(f"bad JSON table: {exc}") from exc
    return table_from_text(text, name=name)


def _parse_batch(body: bytes) -> list[Table]:
    try:
        payload = json.loads(body.decode("utf-8", errors="replace"))
    except ValueError as exc:
        raise BadRequest(f"bad JSON body: {exc}") from exc
    if isinstance(payload, dict):
        payload = payload.get("tables")
    if not isinstance(payload, list) or not payload:
        raise BadRequest("expected a non-empty list under 'tables'")
    tables = []
    for i, obj in enumerate(payload):
        if isinstance(obj, dict) and "rows" in obj:
            tables.append(
                Table(
                    obj["rows"],
                    name=str(obj.get("name", f"table-{i}")),
                    source=str(obj.get("source", "")),
                )
            )
        elif isinstance(obj, list):
            tables.append(Table(obj, name=f"table-{i}"))
        else:
            raise BadRequest(f"tables[{i}] is not a table object or rows list")
    return tables


#: The only values ``requests_total{endpoint=...}`` may take; anything
#: else (scanners, typos) is folded into "other" so arbitrary request
#: paths can't grow the label set without bound.
_KNOWN_ENDPOINTS = frozenset(
    {"/classify", "/classify/batch", "/healthz", "/metrics"}
)


def _endpoint_label(path: str) -> str:
    return path if path in _KNOWN_ENDPOINTS else "other"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: Per-request trace id, minted at the top of each do_* method and
    #: echoed back in the ``X-Trace-Id`` response header.  Minted even
    #: when tracing is disabled so clients can always correlate a
    #: response with the server log line.
    _trace_id = ""

    @property
    def service(self) -> ClassificationService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(body)
        self.service.metrics.inc("responses_total", code=str(code))

    def _send_json(self, code: int, payload: dict) -> None:
        self._send(
            code, json.dumps(payload).encode(), "application/json"
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        path = urlsplit(self.path).path
        self._trace_id = obs.new_trace_id()
        self.service.metrics.inc(
            "requests_total", endpoint=_endpoint_label(path)
        )
        with obs.span(
            "http.request",
            trace_id=self._trace_id,
            method="GET",
            endpoint=_endpoint_label(path),
        ):
            if path == "/healthz":
                self._send_json(200, self.service.health())
            elif path == "/metrics":
                self._send(
                    200,
                    self.service.metrics_text().encode(),
                    "text/plain; version=0.0.4",
                )
            else:
                self._send_json(404, {"error": f"no such endpoint {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        split = urlsplit(self.path)
        path = split.path
        query = parse_qs(split.query)
        model = query.get("model", [""])[0]
        name = query.get("name", [""])[0]
        self._trace_id = obs.new_trace_id()
        self.service.metrics.inc(
            "requests_total", endpoint=_endpoint_label(path)
        )
        start = time.perf_counter()
        # One root span per request.  The explicit trace_id ties the
        # recorded trace to the X-Trace-Id response header and the log
        # line below, so a slow response can be looked up in the trace.
        try:
            with obs.span(
                "http.request",
                trace_id=self._trace_id,
                method="POST",
                endpoint=_endpoint_label(path),
            ):
                if path == "/classify":
                    table = _parse_table(
                        self._read_body(),
                        self.headers.get("Content-Type", ""),
                        name,
                    )
                    record = self.service.classify_table(table, model=model)
                    self._send_json(200, record)
                elif path == "/classify/batch":
                    tables = _parse_batch(self._read_body())
                    records = self.service.classify_many(tables, model=model)
                    self._send_json(
                        200, {"count": len(records), "results": records}
                    )
                else:
                    self._send_json(404, {"error": f"no such endpoint {path}"})
                    return
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception("request failed (trace_id=%s)", self._trace_id)
            self._send_json(500, {"error": str(exc)})
        finally:
            elapsed = time.perf_counter() - start
            self.service.metrics.observe_request(elapsed)
            logger.info(
                "POST %s trace_id=%s %.1fms", path, self._trace_id,
                elapsed * 1000.0,
            )


def make_server(
    service: ClassificationService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Build (but don't start) the threaded HTTP server."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: ClassificationService,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready: threading.Event | None = None,
) -> None:
    """Run until SIGINT/SIGTERM, then drain in-flight work and exit."""
    server = make_server(service, host, port)
    logger.info("serving on http://%s:%d", *server.server_address[:2])
    try:  # SIGTERM (the deployment default) drains like Ctrl-C
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:
        pass  # not the main thread (tests) — rely on server.shutdown()
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        logger.info("interrupt received, draining ...")
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _raise_keyboard_interrupt(signum: int, frame: object) -> None:
    raise KeyboardInterrupt
