"""HTTP front-end on the stdlib ``http.server``.

Endpoints:

* ``POST /classify`` — one table per request.  ``Content-Type:
  application/json`` bodies are CORD-19-style ``{"rows": ...}`` objects;
  anything else is parsed as CSV.  ``?model=NAME`` selects a registry
  entry (default: the first registered model).
* ``POST /classify/batch`` — JSON ``{"tables": [...]}`` (or a bare
  list); each element is a table object or a plain rows list.
* ``GET /healthz`` — liveness plus the loaded model names;
  ``GET /healthz?ready=1`` is the *readiness* probe, answering 503
  until every model is loaded and (under ``--fleet``) a quorum of
  workers is up.
* ``GET /metrics`` — Prometheus text format: request counts, cache hit
  ratio, p50/p95 latency, per-stage timings, fleet health.
* ``POST /admin/reload`` — blue/green model reload: body
  ``{"path": ..., "name"?: ..., "canary"?: fraction, "wait"?: bool}``;
  200 on flip, 409 when the canary aborts or a reload is already
  running.

:class:`ClassificationService` is the transport-independent core: it
owns the registry, the LRU result cache, the metrics, and the
execution backend — a micro-batching thread pool by default, a
:class:`~repro.parallel.pool.ShardedPool` with ``procs``, or a
:class:`~repro.fleet.router.FleetRouter` worker fleet with ``fleet``.
The HTTP layer just parses bodies and serializes records, so tests
(and future transports) can drive the service directly.  When the
fleet sheds load (:class:`~repro.serve.batching.ServiceOverloaded`)
the HTTP layer answers a fast ``503`` with a ``Retry-After`` header.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Sequence
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:
    from repro.fleet.router import FleetConfig, FleetRouter
    from repro.parallel.pool import ShardedPool

from repro import obs
from repro.core.pipeline import MetadataPipeline
from repro.serve.batching import (
    BatchingConfig,
    BatchingExecutor,
    ServiceOverloaded,
)
from repro.serve.bulk import classify_cached, result_record, table_from_text
from repro.serve.cache import LRUCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.registry import ModelRegistry
from repro.tables.model import Table

logger = logging.getLogger("repro.serve.httpd")


class BadRequest(ValueError):
    """Client-side error — mapped to HTTP 400."""


class ClassificationService:
    """Warm models + cache + metrics + micro-batched worker pool.

    ``procs`` switches the execution backend from the in-process thread
    pool to a :class:`~repro.parallel.pool.ShardedPool` of worker
    *processes* (each with its own warm copy of the models — shared via
    the OS page cache for directory stores).  Threads overlap I/O only;
    processes shard the classification math itself across CPUs.  In
    procs mode results are cached per worker process, so the parent
    ``cache`` stays empty.

    ``fleet`` runs the socket-routed worker fleet
    (:class:`~repro.fleet.router.FleetRouter`): like procs it shards
    the math across worker processes, and it adds admission control
    (load shedding under overload), automatic restart of crashed
    workers, and zero-downtime blue/green reloads via :meth:`reload`.
    ``procs`` and ``fleet`` are mutually exclusive.  In fleet mode
    results are cached per worker (consistent routing keeps the shards
    disjoint), so the parent cache is disabled.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        batching: BatchingConfig | None = None,
        cache_capacity: int = 4096,
        metrics: ServiceMetrics | None = None,
        procs: int | None = None,
        fleet: int | None = None,
        fleet_config: "FleetConfig | None" = None,
    ) -> None:
        if len(registry) == 0:
            raise ValueError("the service needs at least one loaded model")
        if procs is not None and fleet is not None:
            raise ValueError("procs and fleet are mutually exclusive")
        self.registry = registry
        self.metrics = metrics or ServiceMetrics()
        # capacity <= 0 disables the result cache entirely: no content
        # hashing, no cache lock on the per-item hot path (LRUCache(0)
        # would still pay both just to record a miss).  Worker-process
        # backends cache inside the workers, so the parent cache is off.
        self.cache: LRUCache | None = (
            LRUCache(cache_capacity)
            if cache_capacity > 0 and fleet is None
            else None
        )
        self.procs = procs
        self.fleet = fleet
        self.workers = (batching or BatchingConfig()).workers
        for name in registry.names():
            # add_stage_hook composes with hooks the caller installed
            # (e.g. a tracing or bulk-metrics subscriber) instead of
            # clobbering them; see MetadataPipeline.add_stage_hook.
            registry.get(name).add_stage_hook(self.metrics.observe_stage)
        self._router: "FleetRouter | None" = None
        self._executor: "BatchingExecutor | ShardedPool | FleetRouter"
        if procs is not None:
            from repro.parallel import ShardedPool

            self._executor = ShardedPool(
                self._model_specs("--procs"),
                procs=procs,
                default=registry.default_name,
                cache_capacity=cache_capacity,
            )
        elif fleet is not None:
            from repro.fleet.router import FleetConfig, FleetRouter

            config = fleet_config or FleetConfig()
            if config.workers != fleet or config.cache_capacity != cache_capacity:
                from dataclasses import replace

                config = replace(
                    config, workers=fleet, cache_capacity=cache_capacity
                )
            self._router = FleetRouter(
                self._model_specs("--fleet"),
                default=registry.default_name,
                config=config,
            )
            self._executor = self._router
        else:
            self._executor = BatchingExecutor(
                self._handle_batch, batching, on_batch=self._record_batch
            )
        self._closed = False

    def _model_specs(self, flag: str) -> dict[str, str]:
        """Every model's on-disk path, for worker-process backends."""
        specs: dict[str, str] = {}
        for name in self.registry.names():
            path = self.registry.info(name).path
            # Path("") has no parts — an in-memory registry entry
            # (ModelRegistry.add) that workers cannot re-load.
            if not path.parts:
                raise ValueError(
                    f"model {name!r} has no on-disk path; serve {flag} "
                    "needs saved models the workers can load themselves"
                )
            specs[name] = str(path)
        return specs

    def _record_batch(self, size: int) -> None:
        self.metrics.inc("batches_total")
        self.metrics.inc("batch_items_total", size)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _handle_batch(
        self, items: list[tuple[str, Table, obs.TraceContext | None]]
    ) -> list[object]:
        # Each item is handled independently: an exception instance in
        # the result list fails only that item's future (see
        # BatchingExecutor), so one bad model name or pathological table
        # can't poison unrelated requests sharing the micro-batch.
        #
        # The third tuple element is the trace context captured on the
        # submitting thread; restoring it here re-parents the per-item
        # span (and everything the pipeline emits under it) to the
        # request's trace across the thread-pool boundary.
        out: list[object] = []
        # Resolve each distinct model name once per batch, not once per
        # item — registry lookups take the registry lock, and a batch is
        # usually all one model.
        resolved_models: dict[str, tuple[str, MetadataPipeline]] = {}
        for model_name, table, ctx in items:
            with obs.use_context(ctx), obs.span(
                "serve.item", table=table.name
            ) as item_span:
                try:
                    hit_entry = resolved_models.get(model_name)
                    if hit_entry is None:
                        pipeline = self.registry.get(model_name or None)
                        resolved = (
                            model_name or self.registry.default_name or ""
                        )
                        resolved_models[model_name] = (resolved, pipeline)
                    else:
                        resolved, pipeline = hit_entry
                    annotation, hit = classify_cached(
                        pipeline, table, self.cache, model=resolved
                    )
                except Exception as exc:  # noqa: BLE001 - per-item isolation
                    logger.warning("classification failed for %r: %s",
                                   table.name, exc)
                    out.append(exc)
                    continue
                item_span.set(model=resolved, cached=hit)
            out.append(
                result_record(table, annotation, model=resolved, cached=hit)
            )
        return out

    def classify_table(self, table: Table, *, model: str = "") -> dict:
        """Classify one table through the queue; blocks for the result.

        The caller's trace context is captured here and travels with the
        item, so spans recorded on the worker thread stay children of
        the submitting request's trace.
        """
        ctx = obs.capture_context()
        return self._executor.submit((model, table, ctx)).result()

    def classify_many(
        self, tables: Sequence[Table], *, model: str = ""
    ) -> list[dict]:
        if self._router is not None:
            # Fleet bulk path: one corpus-shard request per worker
            # instead of one socket round trip per table; each worker
            # classifies its shard through the fused plane.
            return self._router.classify_batch(tables, model=model)
        ctx = obs.capture_context()
        futures = [self._executor.submit((model, t, ctx)) for t in tables]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def reload(
        self,
        path: str,
        *,
        name: str | None = None,
        canary: float | None = None,
        wait: bool = True,
    ) -> dict:
        """Hot-swap a model to the archive/store at ``path``.

        Fleet mode runs the full blue/green dance (standby generation,
        canary slice, compare, atomic flip, retire) — see
        :meth:`repro.fleet.router.FleetRouter.reload`.  Thread mode
        swaps the registry generation atomically and drops stale cached
        results.  Not supported with ``--procs`` (the sharded pool has
        no standby machinery); use ``--fleet`` for reloadable
        multi-process serving.
        """
        if self.procs is not None:
            raise ValueError(
                "model reload is not supported with --procs; "
                "use --fleet for reloadable multi-process serving"
            )
        if self._router is not None:
            outcome = self._router.reload(
                path, name=name, canary=canary, wait=wait
            )
            if outcome.get("status") == "flipped":
                # Keep the parent registry's view (names, paths,
                # generation in /healthz and /metrics) in step with
                # what the workers now serve.
                self.registry.reload(path, name=name)
                self.metrics.inc("reloads_total", outcome="flipped")
            elif outcome.get("status") == "aborted":
                self.metrics.inc("reloads_total", outcome="aborted")
            return outcome
        new_pipeline, _retired = self.registry.reload(path, name=name)
        new_pipeline.add_stage_hook(self.metrics.observe_stage)
        if self.cache is not None:
            # Cached annotations were produced by the retired
            # generation; serving them as the new model's answers would
            # make the reload a lie for every warm table.
            self.cache.clear()
        self.metrics.inc("reloads_total", outcome="flipped")
        resolved = name or Path(path).stem
        return {
            "status": "flipped",
            "generation": self.registry.info(resolved).generation,
        }

    def ready(self) -> bool:
        """Readiness (vs liveness): can this service answer a classify
        request *right now*?  False until every model is loaded and,
        under ``--fleet``, a quorum of workers is up."""
        if self._closed or len(self.registry) == 0:
            return False
        if self._router is not None:
            return self._router.ready()
        return True

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        # Scrape-time aggregation: fold the per-stage timings worker
        # processes accumulated since the last scrape (procs and fleet
        # backends; the thread backend feeds metrics directly).
        drain = getattr(self._executor, "drain_stage_totals", None)
        if drain is not None:
            self.metrics.merge_stage_totals(drain())
        extra: dict[str, float] = {
            "models_loaded": len(self.registry),
            "workers": self.workers,
            "procs": self.procs if self.procs is not None else 0,
        }
        if self.cache is not None:
            stats = self.cache.stats()
            extra.update(
                cache_hits_total=stats.hits,
                cache_misses_total=stats.misses,
                cache_hit_ratio=stats.hit_ratio,
                cache_size=stats.size,
            )
        labeled: dict[str, list[tuple[dict[str, str], float]]] | None = None
        if self._router is not None:
            status = self._router.status()
            extra.update(
                fleet_generation=float(status["generation"]),
                fleet_workers_alive=float(status["alive"]),
                fleet_workers_total=float(status["total"]),
                fleet_shed_total=float(status["shed_total"]),
                fleet_requests_total=float(status["requests_total"]),
                fleet_reload_in_progress=float(
                    bool(status["reload_in_progress"])
                ),
            )
            labeled = {
                "fleet_worker_up": [],
                "fleet_worker_inflight": [],
                "fleet_worker_restarts": [],
            }
            for worker in status["workers"]:
                label = {"worker": str(worker["id"])}
                labeled["fleet_worker_up"].append(
                    (label, 1.0 if worker["alive"] else 0.0)
                )
                labeled["fleet_worker_inflight"].append(
                    (label, float(worker["inflight"]) + float(worker["queued"]))
                )
                labeled["fleet_worker_restarts"].append(
                    (label, float(worker["restarts"]))
                )
        return self.metrics.render(extra=extra, labeled=labeled)

    def health(self) -> dict:
        payload = {
            "status": "ok",
            "models": self.registry.names(),
            "default": self.registry.default_name,
        }
        if self._router is not None:
            status = self._router.status()
            payload["fleet"] = {
                "generation": status["generation"],
                "alive": status["alive"],
                "total": status["total"],
            }
        return payload

    def close(self) -> None:
        """Drain in-flight requests, then stop the worker pool."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(drain=True)


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

def _parse_table(body: bytes, content_type: str, name: str) -> Table:
    text = body.decode("utf-8", errors="replace")
    if not text.strip():
        raise BadRequest("empty request body")
    if "json" in content_type:
        try:
            return table_from_text(text, suffix=".json", name=name)
        except (ValueError, KeyError) as exc:
            raise BadRequest(f"bad JSON table: {exc}") from exc
    return table_from_text(text, name=name)


def _parse_batch(body: bytes) -> list[Table]:
    try:
        payload = json.loads(body.decode("utf-8", errors="replace"))
    except ValueError as exc:
        raise BadRequest(f"bad JSON body: {exc}") from exc
    if isinstance(payload, dict):
        payload = payload.get("tables")
    if not isinstance(payload, list) or not payload:
        raise BadRequest("expected a non-empty list under 'tables'")
    tables = []
    for i, obj in enumerate(payload):
        if isinstance(obj, dict) and "rows" in obj:
            tables.append(
                Table(
                    obj["rows"],
                    name=str(obj.get("name", f"table-{i}")),
                    source=str(obj.get("source", "")),
                )
            )
        elif isinstance(obj, list):
            tables.append(Table(obj, name=f"table-{i}"))
        else:
            raise BadRequest(f"tables[{i}] is not a table object or rows list")
    return tables


#: The only values ``requests_total{endpoint=...}`` may take; anything
#: else (scanners, typos) is folded into "other" so arbitrary request
#: paths can't grow the label set without bound.
_KNOWN_ENDPOINTS = frozenset(
    {"/classify", "/classify/batch", "/healthz", "/metrics", "/admin/reload"}
)


def _endpoint_label(path: str) -> str:
    return path if path in _KNOWN_ENDPOINTS else "other"


class _InflightGauge:
    """Counts HTTP requests currently being handled.

    Keep-alive connections make the *connection* count useless for
    draining — an idle persistent connection never closes — so graceful
    shutdown waits on this gauge instead: zero means every accepted
    request has written its response.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._count = 0  # guarded-by: _cond

    def enter(self) -> None:
        with self._cond:
            self._count += 1

    def leave(self) -> None:
        with self._cond:
            self._count -= 1
            if self._count <= 0:
                self._cond.notify_all()

    def active(self) -> int:
        with self._cond:
            return self._count

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._count > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                # Condition.wait releases the underlying lock while
                # blocked — that's the primitive's whole contract, so
                # this cannot deadlock against enter()/leave().
                self._cond.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: Per-request trace id, minted at the top of each do_* method and
    #: echoed back in the ``X-Trace-Id`` response header.  Minted even
    #: when tracing is disabled so clients can always correlate a
    #: response with the server log line.
    _trace_id = ""

    @property
    def service(self) -> ClassificationService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def inflight(self) -> _InflightGauge:
        return self.server.inflight  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Retry-After is delta-seconds, integral per RFC 9110;
            # round up so "0.2s from now" never becomes "now".
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(body)
        self.service.metrics.inc("responses_total", code=str(code))

    def _send_json(
        self,
        code: int,
        payload: dict,
        *,
        retry_after: float | None = None,
    ) -> None:
        self._send(
            code,
            json.dumps(payload).encode(),
            "application/json",
            retry_after=retry_after,
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        split = urlsplit(self.path)
        path = split.path
        query = parse_qs(split.query)
        self._trace_id = obs.new_trace_id()
        self.service.metrics.inc(
            "requests_total", endpoint=_endpoint_label(path)
        )
        self.inflight.enter()
        try:
            self._do_get(path, query)
        finally:
            self.inflight.leave()

    def _do_get(self, path: str, query: dict[str, list[str]]) -> None:
        with obs.span(
            "http.request",
            trace_id=self._trace_id,
            method="GET",
            endpoint=_endpoint_label(path),
        ):
            if path == "/healthz":
                payload = self.service.health()
                if query.get("ready", ["0"])[0] in ("1", "true"):
                    # Readiness, not liveness: a live-but-unready
                    # service (models still loading, fleet below
                    # quorum) must be taken out of rotation, so the
                    # probe answers 503 rather than a softer body.
                    if self.service.ready():
                        payload["ready"] = True
                        self._send_json(200, payload)
                    else:
                        payload.update(status="unavailable", ready=False)
                        self._send_json(503, payload, retry_after=1.0)
                else:
                    self._send_json(200, payload)
            elif path == "/metrics":
                self._send(
                    200,
                    self.service.metrics_text().encode(),
                    "text/plain; version=0.0.4",
                )
            else:
                self._send_json(404, {"error": f"no such endpoint {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        split = urlsplit(self.path)
        path = split.path
        query = parse_qs(split.query)
        model = query.get("model", [""])[0]
        name = query.get("name", [""])[0]
        self._trace_id = obs.new_trace_id()
        self.service.metrics.inc(
            "requests_total", endpoint=_endpoint_label(path)
        )
        start = time.perf_counter()
        self.inflight.enter()
        # One root span per request.  The explicit trace_id ties the
        # recorded trace to the X-Trace-Id response header and the log
        # line below, so a slow response can be looked up in the trace.
        try:
            with obs.span(
                "http.request",
                trace_id=self._trace_id,
                method="POST",
                endpoint=_endpoint_label(path),
            ):
                if path == "/classify":
                    table = _parse_table(
                        self._read_body(),
                        self.headers.get("Content-Type", ""),
                        name,
                    )
                    record = self.service.classify_table(table, model=model)
                    self._send_json(200, record)
                elif path == "/classify/batch":
                    tables = _parse_batch(self._read_body())
                    records = self.service.classify_many(tables, model=model)
                    self._send_json(
                        200, {"count": len(records), "results": records}
                    )
                elif path == "/admin/reload":
                    self._handle_reload()
                else:
                    self._send_json(404, {"error": f"no such endpoint {path}"})
                    return
        except ServiceOverloaded as exc:
            # Deliberate load shedding, not a failure: a fast 503 with
            # Retry-After tells well-behaved clients when to come back.
            self.service.metrics.inc("requests_shed_total")
            self._send_json(
                503, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception("request failed (trace_id=%s)", self._trace_id)
            self._send_json(500, {"error": str(exc)})
        finally:
            self.inflight.leave()
            elapsed = time.perf_counter() - start
            self.service.metrics.observe_request(elapsed)
            logger.info(
                "POST %s trace_id=%s %.1fms", path, self._trace_id,
                elapsed * 1000.0,
            )

    def _handle_reload(self) -> None:
        """``POST /admin/reload`` — blue/green model swap."""
        from repro.fleet.router import ReloadInProgress

        try:
            payload = json.loads(self._read_body().decode() or "{}")
        except ValueError as exc:
            raise BadRequest(f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict) or not payload.get("path"):
            raise BadRequest("reload body needs a 'path' field")
        canary = payload.get("canary")
        if canary is not None and not isinstance(canary, (int, float)):
            raise BadRequest("'canary' must be a number in [0, 1)")
        try:
            outcome = self.service.reload(
                str(payload["path"]),
                name=(
                    str(payload["name"]) if payload.get("name") else None
                ),
                canary=float(canary) if canary is not None else None,
                wait=bool(payload.get("wait", True)),
            )
        except ReloadInProgress as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        if outcome.get("status") == "aborted":
            # The canary failed and the old generation kept serving —
            # the request did not achieve its effect, so not a 2xx.
            self._send_json(409, outcome)
        else:
            self._send_json(200, outcome)


def make_server(
    service: ClassificationService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Build (but don't start) the threaded HTTP server."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.inflight = _InflightGauge()  # type: ignore[attr-defined]
    return server


def serve(
    service: ClassificationService,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready: threading.Event | None = None,
) -> None:
    """Run until SIGINT/SIGTERM, then drain in-flight work and exit."""
    server = make_server(service, host, port)
    logger.info("serving on http://%s:%d", *server.server_address[:2])
    try:  # SIGTERM (the deployment default) drains like Ctrl-C
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:
        pass  # not the main thread (tests) — rely on server.shutdown()
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        logger.info("interrupt received, draining ...")
    finally:
        # Graceful shutdown, in order: stop accepting (shutdown +
        # server_close), let every accepted request finish writing its
        # response (the in-flight gauge — keep-alive sockets make
        # thread counts useless for this), then drain the execution
        # backend.  Trace flushing happens in the caller (the CLI
        # writes --trace-out after serve() returns), so it observes the
        # fully drained service.
        server.shutdown()
        server.server_close()
        gauge: _InflightGauge = server.inflight  # type: ignore[attr-defined]
        if not gauge.wait_idle(15.0):
            logger.warning(
                "graceful shutdown timed out with %d request(s) still "
                "in flight", gauge.active(),
            )
        service.close()
        logger.info("drained; service closed")


def _raise_keyboard_interrupt(signum: int, frame: object) -> None:
    raise KeyboardInterrupt
