"""A thread-safe LRU result cache.

Keys are :meth:`~repro.tables.model.Table.content_hash` digests (plus
the model name when a registry holds several pipelines), values are
whatever the service wants to reuse — typically a
:class:`~repro.tables.labels.TableAnnotation`.  Eviction is
least-recently-*used*: a ``get`` hit refreshes recency.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

logger = logging.getLogger("repro.serve.cache")

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of cache counters."""

    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache(Generic[K, V]):
    """Bounded LRU mapping with hit/miss accounting.

    All operations take an internal lock, so one instance can back the
    whole worker pool.  ``capacity <= 0`` disables caching (every get
    misses, puts are dropped) — useful for benchmarks that want the
    uncached path without branching at call sites.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[K, V] = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    def get(self, key: K, default: V | None = None) -> V | None:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                evicted, _ = self._data.popitem(last=False)
                self._evictions += 1
                logger.debug("evicted %r", evicted)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                capacity=self.capacity,
                evictions=self._evictions,
            )
