"""The serving layer: a long-lived classification service.

The paper's pitch is *scalable* classification over large heterogeneous
corpora, but ``repro fit`` / ``repro classify`` reload the model and
re-embed every term on each invocation.  This package keeps fitted
pipelines warm and amortizes work across requests:

* :mod:`repro.serve.registry` — loads ``.npz`` pipelines once and keeps
  them warm, keyed by name.
* :mod:`repro.serve.cache` — a thread-safe LRU result cache keyed by
  :meth:`~repro.tables.model.Table.content_hash`, so repeated tables
  skip Algorithm 1 entirely.
* :mod:`repro.serve.batching` — a request queue with micro-batching
  (max size + max latency deadline) over a thread worker pool.
* :mod:`repro.serve.metrics` — request counters, cache hit ratio, and
  latency quantiles rendered in Prometheus text format.
* :mod:`repro.serve.httpd` — the stdlib HTTP front-end
  (``POST /classify``, ``POST /classify/batch``, ``GET /healthz``,
  ``GET /metrics``) with graceful drain on shutdown.
* :mod:`repro.serve.bulk` — the offline bulk path (``repro batch``)
  sharing the same pool/cache machinery.
"""

from repro.serve.batching import BatchingConfig, BatchingExecutor
from repro.serve.bulk import classify_paths, iter_table_paths, table_from_path
from repro.serve.cache import LRUCache
from repro.serve.httpd import ClassificationService, make_server
from repro.serve.metrics import ServiceMetrics
from repro.serve.registry import ModelRegistry

__all__ = [
    "BatchingConfig",
    "BatchingExecutor",
    "ClassificationService",
    "LRUCache",
    "ModelRegistry",
    "ServiceMetrics",
    "classify_paths",
    "iter_table_paths",
    "make_server",
    "table_from_path",
]
