"""Typed internal-invariant checks (the ``assert`` replacement).

Library code used to spell "this cannot be ``None`` here" with a bare
``assert``.  Asserts vanish under ``python -O``, so the guard they
documented silently stops guarding, and when they *do* fire they raise
an :class:`AssertionError` with no message — useless at a distance
(``repro-lint``'s ``assert-in-library`` rule now gates them).

:func:`not_none` is the replacement: it survives ``-O``, raises a
typed, catchable error naming the violated invariant, and narrows
``T | None`` to ``T`` for mypy exactly like the assert did::

    classifier = not_none(pipeline.classifier, "fitted pipeline classifier")
"""

from __future__ import annotations

from typing import TypeVar

T = TypeVar("T")


class InvariantError(RuntimeError):
    """An internal "cannot happen" condition happened.

    Distinct from ``ValueError``/``KeyError`` raised for bad *input*:
    catching this means a bug in this library, not in the caller.
    """


def not_none(value: T | None, what: str) -> T:
    """Return ``value``, raising :class:`InvariantError` if ``None``.

    ``what`` names the invariant in the error message — say what was
    expected to exist and why ("fitted word2vec input matrix"), not
    just the variable name.
    """
    if value is None:
        raise InvariantError(
            f"internal invariant violated: {what} is unexpectedly None"
        )
    return value
