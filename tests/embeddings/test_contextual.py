"""Tests for the contextual encoder (BioBERT substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.contextual import ContextualConfig, ContextualEncoder


def small_corpus() -> list[list[str]]:
    rng = np.random.default_rng(1)
    header = ["age", "duration", "severity", "total"]
    data = ["alpha", "beta", "gamma", "delta"]
    corpus = []
    for _ in range(60):
        pool = header if rng.random() < 0.5 else data
        corpus.append(list(rng.choice(pool, size=5)))
    return corpus


@pytest.fixture(scope="module")
def encoder() -> ContextualEncoder:
    config = ContextualConfig(dim=16, attention_dim=8, epochs=2, seed=2)
    return ContextualEncoder(config).fit(small_corpus())


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            ContextualConfig(dim=0)
        with pytest.raises(ValueError):
            ContextualConfig(mask_prob=0.0)
        with pytest.raises(ValueError):
            ContextualConfig(mask_prob=0.9)


class TestTraining:
    def test_fitted(self, encoder):
        assert encoder.is_fitted
        assert not ContextualEncoder().is_fitted

    def test_static_vector(self, encoder):
        vec = encoder.vector("age")
        assert vec is not None
        assert vec.shape == (16,)
        assert encoder.vector("zzz") is None

    def test_determinism(self):
        corpus = small_corpus()[:20]
        cfg = ContextualConfig(dim=8, attention_dim=4, epochs=1, seed=9)
        a = ContextualEncoder(cfg).fit(corpus)
        b = ContextualEncoder(cfg).fit(corpus)
        np.testing.assert_allclose(a.vector("age"), b.vector("age"))

    def test_empty_corpus(self):
        encoder = ContextualEncoder(ContextualConfig(dim=8, epochs=1)).fit([])
        assert encoder.vector("x") is None


class TestEncodeSentence:
    def test_shape(self, encoder):
        out = encoder.encode_sentence(["age", "duration", "total"])
        assert out.shape == (3, 16)

    def test_oov_dropped(self, encoder):
        out = encoder.encode_sentence(["age", "zzz"])
        assert out.shape == (1, 16)

    def test_all_oov_empty(self, encoder):
        out = encoder.encode_sentence(["zzz", "yyy"])
        assert out.shape == (0, 16)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ContextualEncoder().encode_sentence(["a"])

    def test_context_changes_vectors(self, encoder):
        """The same token embeds differently in different sentences —
        the property that makes the encoder 'contextual'."""
        alone = encoder.encode_sentence(["age", "duration"])[0]
        other = encoder.encode_sentence(["age", "alpha", "beta"])[0]
        assert not np.allclose(alone, other)

    def test_max_len_truncation(self, encoder):
        long = ["age"] * 200
        out = encoder.encode_sentence(long)
        assert out.shape[0] <= encoder.config.max_len


class TestGeometry:
    def test_cluster_separation(self, encoder):
        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

        within = cos(encoder.vector("age"), encoder.vector("duration"))
        across = cos(encoder.vector("age"), encoder.vector("alpha"))
        assert within > across
