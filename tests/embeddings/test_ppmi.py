"""Tests for the PPMI+SVD count-based embedding backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.ppmi import NUM_BUCKET, PCT_BUCKET, PpmiConfig, PpmiSvdEmbedding


def two_cluster_corpus(n: int = 100) -> list[list[str]]:
    rng = np.random.default_rng(4)
    header = ["age", "duration", "severity", "total", "count"]
    data = ["alpha", "beta", "gamma", "delta", "epsilon"]
    corpus = []
    for _ in range(n):
        pool = header if rng.random() < 0.5 else data
        corpus.append(list(rng.choice(pool, size=6)))
    return corpus


@pytest.fixture(scope="module")
def trained() -> PpmiSvdEmbedding:
    return PpmiSvdEmbedding(PpmiConfig(dim=16, window=2, min_count=1)).fit(
        two_cluster_corpus()
    )


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            PpmiConfig(dim=0)
        with pytest.raises(ValueError):
            PpmiConfig(shift=0.5)
        with pytest.raises(ValueError):
            PpmiConfig(eigenvalue_weighting=2.0)


class TestTraining:
    def test_fitted(self, trained):
        assert trained.is_fitted
        assert not PpmiSvdEmbedding().is_fitted

    def test_vector_shape(self, trained):
        vec = trained.vector("age")
        assert vec is not None and vec.shape == (16,)
        assert trained.vector("never-seen") is None

    def test_deterministic(self):
        corpus = two_cluster_corpus(40)
        config = PpmiConfig(dim=8, min_count=1)
        a = PpmiSvdEmbedding(config).fit(corpus)
        b = PpmiSvdEmbedding(config).fit(corpus)
        np.testing.assert_allclose(a.vector("age"), b.vector("age"), atol=1e-8)

    def test_empty_corpus(self):
        model = PpmiSvdEmbedding(PpmiConfig(dim=8)).fit([])
        assert model.vector("x") is None

    def test_degenerate_corpus(self):
        """Singleton sentences produce no pairs but must not crash."""
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(
            [["lonely"], ["words"]]
        )
        vec = model.vector("lonely")
        assert vec is not None
        assert np.all(vec == 0)


class TestNumberBucketing:
    def test_numbers_share_one_vector(self):
        corpus = [["age", "123", "456"], ["duration", "789", "12"]] * 10
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(corpus)
        np.testing.assert_allclose(model.vector("123"), model.vector("99999"))
        assert model.vocab.id_of(NUM_BUCKET) is not None

    def test_percent_bucket_distinct(self):
        corpus = [["age", "12%", "5"], ["total", "99%", "7"]] * 10
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(corpus)
        assert model.vocab.id_of(PCT_BUCKET) is not None
        assert not np.allclose(model.vector("12%"), model.vector("5"))

    def test_bucketing_off(self):
        corpus = [["a", "123"], ["b", "123"]] * 5
        model = PpmiSvdEmbedding(
            PpmiConfig(dim=4, min_count=1, bucket_numbers=False)
        ).fit(corpus)
        assert model.vector("123") is not None
        assert model.vector("456") is None  # unseen number is plain OOV


class TestGeometry:
    @staticmethod
    def _cos(a, b):
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

    def test_clusters_separate(self, trained):
        within = self._cos(trained.vector("age"), trained.vector("duration"))
        across = self._cos(trained.vector("age"), trained.vector("alpha"))
        assert within > across


class TestPipelineIntegration:
    def test_ppmi_backend_end_to_end(self, ckg_train, ckg_eval):
        from repro.core.metrics import evaluate_corpus
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        config = PipelineConfig(
            embedding="ppmi", ppmi=PpmiConfig(dim=32), n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train)
        result = evaluate_corpus(ckg_eval, pipeline.classify)
        assert result.hmd_accuracy[1] >= 0.7

    def test_persistence_round_trip(self, ckg_train, tmp_path):
        from repro.core.persistence import load_pipeline, save_pipeline
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        config = PipelineConfig(
            embedding="ppmi", ppmi=PpmiConfig(dim=16), n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:25])
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "p"))
        for item in ckg_train[:5]:
            assert (
                pipeline.classify(item.table).row_labels
                == loaded.classify(item.table).row_labels
            )
