"""Tests for the PPMI+SVD count-based embedding backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.ppmi import NUM_BUCKET, PCT_BUCKET, PpmiConfig, PpmiSvdEmbedding


def two_cluster_corpus(n: int = 100) -> list[list[str]]:
    rng = np.random.default_rng(4)
    header = ["age", "duration", "severity", "total", "count"]
    data = ["alpha", "beta", "gamma", "delta", "epsilon"]
    corpus = []
    for _ in range(n):
        pool = header if rng.random() < 0.5 else data
        corpus.append(list(rng.choice(pool, size=6)))
    return corpus


@pytest.fixture(scope="module")
def trained() -> PpmiSvdEmbedding:
    return PpmiSvdEmbedding(PpmiConfig(dim=16, window=2, min_count=1)).fit(
        two_cluster_corpus()
    )


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            PpmiConfig(dim=0)
        with pytest.raises(ValueError):
            PpmiConfig(shift=0.5)
        with pytest.raises(ValueError):
            PpmiConfig(eigenvalue_weighting=2.0)


class TestTraining:
    def test_fitted(self, trained):
        assert trained.is_fitted
        assert not PpmiSvdEmbedding().is_fitted

    def test_vector_shape(self, trained):
        vec = trained.vector("age")
        assert vec is not None and vec.shape == (16,)
        assert trained.vector("never-seen") is None

    def test_deterministic(self):
        corpus = two_cluster_corpus(40)
        config = PpmiConfig(dim=8, min_count=1)
        a = PpmiSvdEmbedding(config).fit(corpus)
        b = PpmiSvdEmbedding(config).fit(corpus)
        np.testing.assert_allclose(a.vector("age"), b.vector("age"), atol=1e-8)

    def test_empty_corpus(self):
        model = PpmiSvdEmbedding(PpmiConfig(dim=8)).fit([])
        assert model.vector("x") is None

    def test_degenerate_corpus(self):
        """Singleton sentences produce no pairs but must not crash."""
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(
            [["lonely"], ["words"]]
        )
        vec = model.vector("lonely")
        assert vec is not None
        assert np.all(vec == 0)


class TestNumberBucketing:
    def test_numbers_share_one_vector(self):
        corpus = [["age", "123", "456"], ["duration", "789", "12"]] * 10
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(corpus)
        np.testing.assert_allclose(model.vector("123"), model.vector("99999"))
        assert model.vocab.id_of(NUM_BUCKET) is not None

    def test_percent_bucket_distinct(self):
        corpus = [["age", "12%", "5"], ["total", "99%", "7"]] * 10
        model = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(corpus)
        assert model.vocab.id_of(PCT_BUCKET) is not None
        assert not np.allclose(model.vector("12%"), model.vector("5"))

    def test_bucketing_off(self):
        corpus = [["a", "123"], ["b", "123"]] * 5
        model = PpmiSvdEmbedding(
            PpmiConfig(dim=4, min_count=1, bucket_numbers=False)
        ).fit(corpus)
        assert model.vector("123") is not None
        assert model.vector("456") is None  # unseen number is plain OOV


class TestGeometry:
    @staticmethod
    def _cos(a, b):
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

    def test_clusters_separate(self, trained):
        within = self._cos(trained.vector("age"), trained.vector("duration"))
        across = self._cos(trained.vector("age"), trained.vector("alpha"))
        assert within > across


class TestPipelineIntegration:
    def test_ppmi_backend_end_to_end(self, ckg_train, ckg_eval):
        from repro.core.metrics import evaluate_corpus
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        config = PipelineConfig(
            embedding="ppmi", ppmi=PpmiConfig(dim=32), n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train)
        result = evaluate_corpus(ckg_eval, pipeline.classify)
        assert result.hmd_accuracy[1] >= 0.7

    def test_persistence_round_trip(self, ckg_train, tmp_path):
        from repro.core.persistence import load_pipeline, save_pipeline
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        config = PipelineConfig(
            embedding="ppmi", ppmi=PpmiConfig(dim=16), n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:25])
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "p"))
        for item in ckg_train[:5]:
            assert (
                pipeline.classify(item.table).row_labels
                == loaded.classify(item.table).row_labels
            )


class TestDeterminism:
    def test_repeated_fits_bitwise_identical(self):
        # Regression: ARPACK svds carries hidden cross-call RNG state,
        # so back-to-back fits in one process used to diverge.  The
        # deterministic factorization must not.
        sentences = [
            ["region", "year", "count", "area"],
            ["year", "2001", "area", "north"],
            ["count", "region", "north", "2002"],
        ] * 4
        base = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(sentences)
        for _ in range(5):
            again = PpmiSvdEmbedding(PpmiConfig(dim=8, min_count=1)).fit(
                sentences
            )
            assert np.array_equal(base._vectors, again._vectors)

    def test_randomized_path_deterministic(self):
        # Force the large-vocabulary randomized branch and pin that its
        # only randomness is the locally seeded sketch.
        from scipy import sparse

        from repro.embeddings.ppmi import _truncated_svd

        rng = np.random.default_rng(5)
        dense = rng.random((80, 80))
        matrix = sparse.csr_matrix(dense * (dense < 0.2))
        matrix = matrix + matrix.T
        import repro.embeddings.ppmi as ppmi_mod

        old = ppmi_mod._DENSE_SVD_MAX
        ppmi_mod._DENSE_SVD_MAX = 10
        try:
            u1, s1 = _truncated_svd(matrix, 8, seed=0)
            u2, s2 = _truncated_svd(matrix, 8, seed=0)
        finally:
            ppmi_mod._DENSE_SVD_MAX = old
        assert np.array_equal(u1, u2) and np.array_equal(s1, s2)
        # and it tracks the exact spectrum it approximates (this test
        # matrix has a near-flat tail, the slowest case for subspace
        # iteration; real PPMI spectra decay and converge much tighter)
        exact = np.linalg.svd(matrix.toarray(), compute_uv=False)[:8]
        assert np.allclose(s1, exact, rtol=5e-2)
        assert abs(s1[0] - exact[0]) / exact[0] < 1e-9
