"""Tests for the from-scratch SGNS Word2Vec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.word2vec import Word2Vec, Word2VecConfig


def two_cluster_corpus(n: int = 120) -> list[list[str]]:
    """Two disjoint co-occurrence clusters; SGNS must separate them."""
    rng = np.random.default_rng(0)
    header = ["age", "duration", "severity", "total", "count"]
    data = ["alpha", "beta", "gamma", "delta", "epsilon"]
    corpus = []
    for _ in range(n):
        pool = header if rng.random() < 0.5 else data
        corpus.append(list(rng.choice(pool, size=6)))
    return corpus


@pytest.fixture(scope="module")
def trained() -> Word2Vec:
    # subsample=0: with a 10-token vocabulary every token is "frequent",
    # and the default threshold would drop most of the corpus.
    config = Word2VecConfig(dim=24, epochs=5, seed=5, window=2, subsample=0.0)
    return Word2Vec(config).fit(two_cluster_corpus())


class TestConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            Word2VecConfig(dim=0)
        with pytest.raises(ValueError):
            Word2VecConfig(window=0)
        with pytest.raises(ValueError):
            Word2VecConfig(negatives=0)
        with pytest.raises(ValueError):
            Word2VecConfig(epochs=0)


class TestTraining:
    def test_is_fitted(self, trained):
        assert trained.is_fitted
        assert not Word2Vec().is_fitted

    def test_vector_shape(self, trained):
        vec = trained.vector("age")
        assert vec is not None
        assert vec.shape == (24,)

    def test_oov_returns_none(self, trained):
        assert trained.vector("nonexistent") is None

    def test_unfitted_returns_none(self):
        assert Word2Vec().vector("age") is None

    def test_empty_corpus_survives(self):
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1)).fit([])
        assert model.vector("x") is None

    def test_single_token_sentences_skipped(self):
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1)).fit([["a"], ["b"]])
        # no pairs -> embeddings stay at init, but the model is usable
        assert model.vector("a") is not None

    def test_determinism(self):
        corpus = two_cluster_corpus(30)
        a = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=3)).fit(corpus)
        b = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=3)).fit(corpus)
        np.testing.assert_allclose(a.vector("age"), b.vector("age"))


class TestGeometry:
    @staticmethod
    def _cos(a, b):
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

    def test_clusters_separate(self, trained):
        """Within-cluster similarity beats cross-cluster similarity."""
        within = self._cos(trained.vector("age"), trained.vector("duration"))
        across = self._cos(trained.vector("age"), trained.vector("alpha"))
        assert within > across

    def test_most_similar_prefers_cluster(self, trained):
        neighbours = [t for t, _ in trained.most_similar("age", topn=3)]
        header = {"duration", "severity", "total", "count"}
        assert len(set(neighbours) & header) >= 2

    def test_most_similar_excludes_self_and_specials(self, trained):
        results = trained.most_similar("age", topn=20)
        names = [t for t, _ in results]
        assert "age" not in names
        assert not any(n.startswith("[") for n in names)

    def test_most_similar_unfitted(self):
        assert Word2Vec().most_similar("x") == []
