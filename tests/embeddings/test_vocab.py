"""Tests for the Vocabulary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.embeddings.vocab import CLS, PAD, SEP, SPECIAL_TOKENS, Vocabulary


@pytest.fixture
def vocab() -> Vocabulary:
    return Vocabulary.from_sentences(
        [["a", "b", "a"], ["a", "c"], ["a", "b"]]
    )


class TestConstruction:
    def test_specials_always_present(self, vocab):
        for token in SPECIAL_TOKENS:
            assert token in vocab
        assert vocab.id_of(PAD) == 0

    def test_frequency_order(self, vocab):
        # most frequent non-special token gets the smallest id after specials
        assert vocab.id_of("a") == vocab.n_special
        assert vocab.count_of("a") == 4
        assert vocab.count_of("b") == 2

    def test_min_count_filters(self):
        vocab = Vocabulary.from_sentences([["x", "x", "y"]], min_count=2)
        assert "x" in vocab
        assert "y" not in vocab

    def test_empty_corpus(self):
        vocab = Vocabulary.from_sentences([])
        assert len(vocab) == len(SPECIAL_TOKENS)
        assert vocab.total_count == 0


class TestMapping:
    def test_round_trip(self, vocab):
        for token in ("a", "b", "c", CLS, SEP):
            token_id = vocab.id_of(token)
            assert token_id is not None
            assert vocab.token_of(token_id) == token

    def test_unknown(self, vocab):
        assert vocab.id_of("zzz") is None
        assert vocab.count_of("zzz") == 0

    def test_encode_drops_oov(self, vocab):
        ids = vocab.encode(["a", "zzz", "b"])
        assert len(ids) == 2

    def test_encode_strict_raises(self, vocab):
        with pytest.raises(KeyError):
            vocab.encode(["zzz"], drop_oov=False)

    def test_iteration(self, vocab):
        tokens = list(vocab)
        assert len(tokens) == len(vocab)
        assert tokens[0] == PAD


class TestDistributions:
    def test_negative_sampling_probs(self, vocab):
        probs = vocab.negative_sampling_probs()
        assert probs.shape == (len(vocab),)
        assert np.isclose(probs.sum(), 1.0)
        # specials excluded
        for token in SPECIAL_TOKENS:
            assert probs[vocab.id_of(token)] == 0.0
        # power < 1 flattens: a's share is below its raw frequency share
        raw_share = 4 / vocab.total_count
        assert probs[vocab.id_of("a")] < raw_share + 1e-9 or raw_share == 1.0

    def test_subsample_keep_probs_bounds(self, vocab):
        keep = vocab.subsample_keep_probs(threshold=1e-3)
        assert keep.shape == (len(vocab),)
        assert np.all(keep > 0)
        assert np.all(keep <= 1.0)

    def test_frequent_tokens_subsampled_harder(self):
        sentences = [["hot"] * 50 + ["cold"]]
        vocab = Vocabulary.from_sentences(sentences)
        keep = vocab.subsample_keep_probs(threshold=1e-2)
        assert keep[vocab.id_of("hot")] < keep[vocab.id_of("cold")]


@given(st.lists(st.lists(st.text(min_size=1, max_size=4), max_size=6), max_size=6))
def test_counts_match_corpus(sentences):
    vocab = Vocabulary.from_sentences(sentences)
    flat = [t for s in sentences for t in s]
    assert vocab.total_count == len([t for t in flat if t in vocab])
    for token in set(flat):
        if not token.startswith("["):
            assert vocab.count_of(token) == flat.count(token)
