"""Tests for TermEmbedder (lookup, OOV back-off, centering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder, corpus_mean_vector
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.text import Token, TokenKind


class _NoneModel:
    """A backend that knows nothing (everything is OOV)."""

    @property
    def dim(self) -> int:
        return 8

    def vector(self, token: str):
        return None


class TestLookup:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TermEmbedder(_NoneModel(), oov="bogus")
        with pytest.raises(ValueError):
            TermEmbedder(_NoneModel(), ngram=1)

    def test_backend_vector_passthrough(self):
        model = HashedEmbedding(8)
        embedder = TermEmbedder(model)
        np.testing.assert_allclose(embedder.vector("x"), model.vector("x"))

    def test_has_reflects_backend(self):
        embedder = TermEmbedder(_NoneModel())
        assert not embedder.has("anything")
        assert TermEmbedder(HashedEmbedding(8)).has("anything")

    def test_cache_consistency(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        first = embedder.vector("tok")
        second = embedder.vector("tok")
        assert first is second  # cached object
        embedder.clear_cache()
        np.testing.assert_allclose(embedder.vector("tok"), first)


class TestOov:
    def test_zero_strategy(self):
        embedder = TermEmbedder(_NoneModel(), oov="zero")
        assert np.all(embedder.vector("x") == 0)

    def test_hash_strategy_deterministic(self):
        embedder = TermEmbedder(_NoneModel(), oov="hash")
        np.testing.assert_allclose(embedder.vector("x"), embedder.vector("x"))
        assert not np.allclose(embedder.vector("x"), embedder.vector("y"))

    def test_ngram_strategy_similar_strings_close(self):
        embedder = TermEmbedder(_NoneModel(), oov="ngram")

        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

        near = cos(embedder.vector("enrollment"), embedder.vector("enrollments"))
        far = cos(embedder.vector("enrollment"), embedder.vector("zqxwvy"))
        assert near > far

    def test_ngram_short_token(self):
        embedder = TermEmbedder(_NoneModel(), oov="ngram")
        vec = embedder.vector("a")
        assert vec.shape == (8,)
        assert np.all(np.isfinite(vec))


class TestBatch:
    def test_embed_tokens_shapes(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_tokens(["a", "b"])
        assert out.shape == (2, 8)
        assert embedder.embed_tokens([]).shape == (0, 8)

    def test_token_objects_accepted(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_tokens([Token("a", TokenKind.WORD)])
        np.testing.assert_allclose(out[0], embedder.vector("a"))

    def test_embed_cells_tokenizes(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_cells(["Student enrollment", "14,373"])
        assert out.shape == (3, 8)  # student, enrollment, 14373


class TestCentering:
    def test_shape_checked(self):
        with pytest.raises(ValueError):
            TermEmbedder(HashedEmbedding(8), centering=np.zeros(4))

    def test_centering_applied(self):
        model = HashedEmbedding(8)
        center = np.ones(8) * 0.5
        plain = TermEmbedder(model)
        centered = TermEmbedder(model, centering=center)
        np.testing.assert_allclose(
            centered.vector("x"), plain.vector("x") - center
        )

    def test_corpus_mean_vector(self):
        corpus = [["a", "b"], ["a", "c"], ["b", "c"]]
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=0)).fit(corpus)
        mean = corpus_mean_vector(model)
        assert mean is not None
        assert mean.shape == (8,)
        vectors = [model.vector(t) for t in ("a", "b", "c")]
        np.testing.assert_allclose(mean, np.mean(vectors, axis=0))

    def test_corpus_mean_none_without_vocab(self):
        assert corpus_mean_vector(HashedEmbedding(8)) is None


class TestCacheLru:
    def test_eviction_keeps_most_recent(self):
        embedder = TermEmbedder(HashedEmbedding(8), cache_size=3)
        for tok in ("a", "b", "c"):
            embedder.vector(tok)
        embedder.vector("a")  # refresh "a": "b" is now least recent
        embedder.vector("d")  # evicts "b"
        assert set(embedder._cache) == {"a", "c", "d"}
        assert embedder.cache_info().size == 3

    def test_size_never_exceeds_capacity(self):
        embedder = TermEmbedder(HashedEmbedding(8), cache_size=5)
        for i in range(50):
            embedder.vector(f"tok{i}")
            assert embedder.cache_info().size <= 5
        # The cache keeps caching after hitting capacity (no freeze).
        last = embedder.vector("tok49")
        assert embedder.vector("tok49") is last

    def test_cache_size_zero_disables_caching(self):
        embedder = TermEmbedder(HashedEmbedding(8), cache_size=0)
        first = embedder.vector("tok")
        second = embedder.vector("tok")
        assert first is not second
        np.testing.assert_allclose(first, second)
        assert embedder.cache_info().size == 0

    def test_cache_info_counters(self):
        embedder = TermEmbedder(HashedEmbedding(8), cache_size=10)
        embedder.vector("a")
        embedder.vector("a")
        embedder.vector("b")
        info = embedder.cache_info()
        assert info.hits == 1
        assert info.misses == 2
        assert info.size == 2
        assert info.capacity == 10
        embedder.clear_cache()
        info = embedder.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)


class TestVectorsBatch:
    def test_matches_scalar_path(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        tokens = ["alpha", "beta", "alpha", "14373", "gamma"]
        batched = embedder.vectors(tokens)
        scalar = np.stack([embedder.vector(t) for t in tokens])
        np.testing.assert_allclose(batched, scalar)

    def test_duplicates_resolved_once(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.vectors(["x"] * 10)
        assert out.shape == (10, 8)
        assert embedder.cache_info().misses == 1

    def test_empty_batch(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        assert embedder.vectors([]).shape == (0, 8)

    def test_token_objects_accepted(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.vectors([Token("a", TokenKind.WORD), "b"])
        np.testing.assert_allclose(out[0], embedder.vector("a"))

    def test_oov_backoff_and_centering_applied(self):
        center = np.full(8, 0.25)
        plain = TermEmbedder(_NoneModel(), oov="ngram")
        centered = TermEmbedder(_NoneModel(), oov="ngram", centering=center)
        np.testing.assert_allclose(
            centered.vectors(["word"])[0], plain.vectors(["word"])[0] - center
        )

    def test_backend_batch_hook_used(self):
        calls = []

        class _BatchModel(HashedEmbedding):
            def batch_vectors(self, tokens):
                calls.append(list(tokens))
                return [self.vector(t) for t in tokens]

        embedder = TermEmbedder(_BatchModel(8))
        embedder.vectors(["a", "b", "a"])
        assert calls == [["a", "b"]]  # deduped, one backend call


class TestCacheConcurrency:
    def test_eight_thread_hammer_no_corruption(self):
        """Shared embedder under 8 threads with a cache small enough to
        force constant eviction: every returned vector must still equal
        the single-thread reference, and the cache must stay bounded."""
        import threading as _threading

        embedder = TermEmbedder(HashedEmbedding(16), cache_size=32)
        reference = TermEmbedder(HashedEmbedding(16), cache_size=0)
        tokens = [f"tok{i}" for i in range(100)]
        expected = {t: reference.vector(t) for t in tokens}
        errors: list[str] = []
        barrier = _threading.Barrier(8)

        def worker(seed: int) -> None:
            barrier.wait()
            for round_no in range(30):
                for i, tok in enumerate(tokens):
                    if (i + seed + round_no) % 3 == 0:
                        got = embedder.vector(tok)
                    else:
                        got = embedder.vectors([tok, tokens[(i + seed) % 100]])[0]
                    if not np.array_equal(got, expected[tok]):
                        errors.append(tok)
                        return

        threads = [
            _threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        info = embedder.cache_info()
        assert info.size <= 32
        # Cached entries themselves must be intact.
        for tok, vec in embedder._cache.items():
            assert np.array_equal(vec, expected[tok])
