"""Tests for TermEmbedder (lookup, OOV back-off, centering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder, corpus_mean_vector
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.text import Token, TokenKind


class _NoneModel:
    """A backend that knows nothing (everything is OOV)."""

    @property
    def dim(self) -> int:
        return 8

    def vector(self, token: str):
        return None


class TestLookup:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TermEmbedder(_NoneModel(), oov="bogus")
        with pytest.raises(ValueError):
            TermEmbedder(_NoneModel(), ngram=1)

    def test_backend_vector_passthrough(self):
        model = HashedEmbedding(8)
        embedder = TermEmbedder(model)
        np.testing.assert_allclose(embedder.vector("x"), model.vector("x"))

    def test_has_reflects_backend(self):
        embedder = TermEmbedder(_NoneModel())
        assert not embedder.has("anything")
        assert TermEmbedder(HashedEmbedding(8)).has("anything")

    def test_cache_consistency(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        first = embedder.vector("tok")
        second = embedder.vector("tok")
        assert first is second  # cached object
        embedder.clear_cache()
        np.testing.assert_allclose(embedder.vector("tok"), first)


class TestOov:
    def test_zero_strategy(self):
        embedder = TermEmbedder(_NoneModel(), oov="zero")
        assert np.all(embedder.vector("x") == 0)

    def test_hash_strategy_deterministic(self):
        embedder = TermEmbedder(_NoneModel(), oov="hash")
        np.testing.assert_allclose(embedder.vector("x"), embedder.vector("x"))
        assert not np.allclose(embedder.vector("x"), embedder.vector("y"))

    def test_ngram_strategy_similar_strings_close(self):
        embedder = TermEmbedder(_NoneModel(), oov="ngram")

        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

        near = cos(embedder.vector("enrollment"), embedder.vector("enrollments"))
        far = cos(embedder.vector("enrollment"), embedder.vector("zqxwvy"))
        assert near > far

    def test_ngram_short_token(self):
        embedder = TermEmbedder(_NoneModel(), oov="ngram")
        vec = embedder.vector("a")
        assert vec.shape == (8,)
        assert np.all(np.isfinite(vec))


class TestBatch:
    def test_embed_tokens_shapes(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_tokens(["a", "b"])
        assert out.shape == (2, 8)
        assert embedder.embed_tokens([]).shape == (0, 8)

    def test_token_objects_accepted(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_tokens([Token("a", TokenKind.WORD)])
        np.testing.assert_allclose(out[0], embedder.vector("a"))

    def test_embed_cells_tokenizes(self):
        embedder = TermEmbedder(HashedEmbedding(8))
        out = embedder.embed_cells(["Student enrollment", "14,373"])
        assert out.shape == (3, 8)  # student, enrollment, 14373


class TestCentering:
    def test_shape_checked(self):
        with pytest.raises(ValueError):
            TermEmbedder(HashedEmbedding(8), centering=np.zeros(4))

    def test_centering_applied(self):
        model = HashedEmbedding(8)
        center = np.ones(8) * 0.5
        plain = TermEmbedder(model)
        centered = TermEmbedder(model, centering=center)
        np.testing.assert_allclose(
            centered.vector("x"), plain.vector("x") - center
        )

    def test_corpus_mean_vector(self):
        corpus = [["a", "b"], ["a", "c"], ["b", "c"]]
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=0)).fit(corpus)
        mean = corpus_mean_vector(model)
        assert mean is not None
        assert mean.shape == (8,)
        vectors = [model.vector(t) for t in ("a", "b", "c")]
        np.testing.assert_allclose(mean, np.mean(vectors, axis=0))

    def test_corpus_mean_none_without_vocab(self):
        assert corpus_mean_vector(HashedEmbedding(8)) is None
