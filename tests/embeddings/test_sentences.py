"""Tests for table -> training-sentence construction."""

from __future__ import annotations

from repro.embeddings.sentences import sentences_from_table, sentences_from_tables
from repro.embeddings.vocab import CLS, SEP
from repro.tables.model import Table


class TestRowSentences:
    def test_cls_prefix_and_sep_between_cells(self, simple_table):
        sentences = sentences_from_table(simple_table, include_columns=False)
        first = sentences[0]
        assert first[0] == CLS
        assert SEP in first
        assert "state" in first  # lowercased tokens

    def test_row_count(self, simple_table):
        sentences = sentences_from_table(simple_table, include_columns=False)
        assert len(sentences) == simple_table.n_rows

    def test_columns_included_by_default(self, simple_table):
        sentences = sentences_from_table(simple_table)
        assert len(sentences) == simple_table.n_rows + simple_table.n_cols

    def test_blank_levels_skipped(self):
        table = Table([["a", "b"], ["", ""]])
        sentences = sentences_from_table(table, include_columns=False)
        assert len(sentences) == 1

    def test_max_len_truncates(self):
        table = Table([["word " * 50, "more " * 50]])
        sentences = sentences_from_table(table, include_columns=False, max_len=10)
        assert all(len(s) <= 10 for s in sentences)

    def test_numbers_normalized(self):
        table = Table([["14,373", "96.7%"]])
        sentence = sentences_from_table(table, include_columns=False)[0]
        assert "14373" in sentence
        assert "96.7%" in sentence


class TestCorpusStream:
    def test_streams_all_tables(self, simple_table):
        tables = [simple_table, simple_table]
        sentences = list(sentences_from_tables(tables, include_columns=False))
        assert len(sentences) == 2 * simple_table.n_rows

    def test_lazy_iterator(self, simple_table):
        stream = sentences_from_tables([simple_table])
        assert iter(stream) is stream
