"""Tests for the hashed embedding backend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.embeddings.hashed import NUMERIC_FIELD, HashedEmbedding


def cos(a: np.ndarray, b: np.ndarray) -> float:
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))


class TestBasics:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            HashedEmbedding(0)
        with pytest.raises(ValueError):
            HashedEmbedding(8, field_weight=1.0)

    def test_deterministic(self):
        a = HashedEmbedding(16).vector("token")
        b = HashedEmbedding(16).vector("token")
        np.testing.assert_allclose(a, b)

    def test_distinct_tokens_differ(self):
        model = HashedEmbedding(32)
        assert not np.allclose(model.vector("a"), model.vector("b"))

    def test_unit_norm(self):
        vec = HashedEmbedding(16).vector("anything")
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_always_fitted(self):
        assert HashedEmbedding(8).is_fitted


class TestFields:
    def test_same_field_tokens_close(self):
        model = HashedEmbedding(32, fields={"x": "f", "y": "f", "z": "other"})
        assert cos(model.vector("x"), model.vector("y")) > 0.3
        assert cos(model.vector("x"), model.vector("y")) > cos(
            model.vector("x"), model.vector("z")
        )

    def test_field_weight_controls_tightness(self):
        loose = HashedEmbedding(32, fields={"x": "f", "y": "f"}, field_weight=0.2)
        tight = HashedEmbedding(32, fields={"x": "f", "y": "f"}, field_weight=0.9)
        assert cos(tight.vector("x"), tight.vector("y")) > cos(
            loose.vector("x"), loose.vector("y")
        )

    def test_numeric_tokens_share_field(self):
        model = HashedEmbedding(32)
        assert cos(model.vector("123"), model.vector("98.5%")) > 0.3

    def test_numeric_field_off(self):
        model = HashedEmbedding(32, numeric_field=False)
        assert cos(model.vector("123"), model.vector("45678")) < 0.5

    def test_assign_field_later(self):
        model = HashedEmbedding(32, field_weight=0.9)
        before = model.vector("word")
        model.assign_field("word", NUMERIC_FIELD)
        after = model.vector("word")
        assert not np.allclose(before, after)


@given(st.text(min_size=1, max_size=20))
def test_every_token_embeds(token):
    vec = HashedEmbedding(8).vector(token)
    assert vec.shape == (8,)
    assert np.all(np.isfinite(vec))
