"""Tracer semantics: nesting, attributes, threads, context handoff."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.tracer import NoopTracer, Tracer, _NOOP_SPAN


class TestSpanBasics:
    def test_span_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.name == "work"
        assert span.end >= span.start
        assert tracer.spans() == [span]

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("work", table="t1", rows=5) as span:
            span.set(cached=True)
        assert span.attributes == {"table": "t1", "rows": 5, "cached": True}

    def test_nesting_assigns_parent_and_shares_trace(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id
        assert parent.parent_id is None
        assert child.trace_id == parent.trace_id == grandchild.trace_id

    def test_siblings_get_distinct_span_ids(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_explicit_trace_id_used_for_roots_only(self):
        tracer = Tracer()
        with tracer.span("root", trace_id="req-1") as root:
            with tracer.span("child", trace_id="ignored") as child:
                pass
        assert root.trace_id == "req-1"
        assert child.trace_id == "req-1"  # parent wins over the argument

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.error == "ValueError: boom"
        assert tracer.spans() == [span]

    def test_buffer_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped() == 3

    def test_roots(self):
        tracer = Tracer()
        with tracer.span("r1"):
            with tracer.span("c"):
                pass
        with tracer.span("r2"):
            pass
        roots = sorted(r.name for r in obs.iter_roots(tracer.spans()))
        assert roots == ["r1", "r2"]


class TestThreads:
    def test_threads_do_not_inherit_context(self):
        tracer = Tracer()
        recorded = []

        def worker():
            with tracer.span("worker") as span:
                recorded.append(span)

        with tracer.span("main") as main_span:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        worker_span = recorded[0]
        assert worker_span.parent_id is None
        assert worker_span.trace_id != main_span.trace_id

    def test_capture_and_use_context_cross_thread(self):
        tracer = Tracer()
        recorded = []

        def worker(ctx):
            with tracer.use_context(ctx):
                with tracer.span("worker") as span:
                    recorded.append(span)

        with tracer.span("main") as main_span:
            ctx = tracer.current_context()
            t = threading.Thread(target=worker, args=(ctx,))
            t.start()
            t.join()
        worker_span = recorded[0]
        assert worker_span.trace_id == main_span.trace_id
        assert worker_span.parent_id == main_span.span_id

    def test_use_context_none_is_noop(self):
        tracer = Tracer()
        with tracer.use_context(None):
            with tracer.span("orphan") as span:
                pass
        assert span.parent_id is None

    def test_concurrent_traces_stay_separate(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            with tracer.span("root", worker=i):
                for j in range(10):
                    with tracer.span("child", step=j):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        roots = [s for s in spans if s.name == "root"]
        assert len({r.trace_id for r in roots}) == 4
        by_trace = {r.trace_id: r for r in roots}
        for child in (s for s in spans if s.name == "child"):
            assert child.parent_id == by_trace[child.trace_id].span_id


class TestGlobalTracer:
    def test_default_is_noop(self):
        assert not obs.get_tracer().enabled
        assert obs.span("anything", key=1) is _NOOP_SPAN

    def test_tracing_context_installs_and_restores(self):
        before = obs.get_tracer()
        with obs.tracing() as tracer:
            assert obs.get_tracer() is tracer
            with obs.span("inside"):
                pass
        assert obs.get_tracer() is before
        assert [s.name for s in tracer.spans()] == ["inside"]
        # after exit the alias is the no-op again
        assert obs.span("after") is _NOOP_SPAN

    def test_set_tracer_rebinds_package_alias(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:
            with obs.span("via-alias"):
                pass
        finally:
            obs.set_tracer(previous)
        assert [s.name for s in tracer.spans()] == ["via-alias"]

    def test_capture_context_through_module_functions(self):
        with obs.tracing() as tracer:
            with obs.span("outer") as outer:
                ctx = obs.capture_context()
            with obs.use_context(ctx):
                with obs.span("adopted") as adopted:
                    pass
        assert ctx is not None
        assert ctx.span_id == outer.span_id
        assert adopted.parent_id == outer.span_id
        assert adopted.trace_id == outer.trace_id
        assert len(tracer.spans()) == 2


class TestNoop:
    def test_noop_span_is_reentrant_singleton(self):
        tracer = NoopTracer()
        handle = tracer.span("x", a=1)
        assert handle is _NOOP_SPAN
        with handle as entered:
            assert entered is handle
        assert handle.set(b=2) is handle

    def test_noop_context_is_none(self):
        tracer = NoopTracer()
        assert tracer.current_context() is None
        with tracer.use_context(None):
            pass

    def test_max_spans_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)
