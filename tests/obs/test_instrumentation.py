"""The baked-in instrumentation: span trees from real pipeline runs."""

from __future__ import annotations

from repro import obs


def _span_tree(spans):
    """Map span_id -> span and name -> list of parent names."""
    by_id = {s.span_id: s for s in spans}
    parents: dict[str, set] = {}
    for s in spans:
        parent = by_id.get(s.parent_id)
        parents.setdefault(s.name, set()).add(
            parent.name if parent is not None else None
        )
    return by_id, parents


class TestClassifyInstrumentation:
    def test_classify_root_nests_pipeline_stages(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        with obs.tracing() as tracer:
            hashed_pipeline.classify(table)
        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"classify", "embed", "tokenize", "aggregate", "lookup"} <= names
        _, parents = _span_tree(spans)
        assert parents["embed"] == {"classify"}
        assert parents["tokenize"] == {"embed"}
        assert parents["aggregate"] == {"embed"}
        assert parents["lookup"] == {"embed"}
        assert parents["angle_walk"] == {"classify"}
        assert parents["classify"] == {None}
        # one trace for the whole classify call
        assert len({s.trace_id for s in spans}) == 1

    def test_classify_span_attributes(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        with obs.tracing() as tracer:
            hashed_pipeline.classify(table)
        root = next(s for s in tracer.spans() if s.name == "classify")
        assert root.attributes["table"] == table.name
        assert root.attributes["rows"] == table.n_rows
        assert root.attributes["cols"] == table.n_cols
        embed = next(s for s in tracer.spans() if s.name == "embed")
        assert embed.attributes["tokens"] > 0
        assert embed.attributes["unique_tokens"] > 0

    def test_lookup_span_counts_cache_hits(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        hashed_pipeline.classify(table)  # warm the token cache
        with obs.tracing() as tracer:
            hashed_pipeline.classify(table)
        lookup = next(s for s in tracer.spans() if s.name == "lookup")
        attrs = lookup.attributes
        assert attrs["n_tokens"] >= attrs["unique"] > 0
        assert attrs["cache_hits"] + attrs["cache_misses"] == attrs["unique"]
        assert attrs["cache_hits"] > 0  # second pass hits the warm cache

    def test_scalar_path_emits_aggregate_span(self, hashed_pipeline, ckg_eval):
        from dataclasses import replace

        from repro.core.classifier import MetadataClassifier

        clf = hashed_pipeline.classifier
        scalar = MetadataClassifier(
            clf.embedder,
            clf.row_centroids,
            clf.col_centroids,
            projection=clf.projection,
            config=replace(clf.config, vectorized=False),
        )
        with obs.tracing() as tracer:
            scalar.classify(ckg_eval[0].table)
        _, parents = _span_tree(tracer.spans())
        assert parents["aggregate"] == {"classify"}


class TestFitInstrumentation:
    def test_fit_span_nests_stages(self, ckg_train):
        from repro.core.pipeline import MetadataPipeline, PipelineConfig
        from repro.corpus.vocabularies import get_domain

        config = PipelineConfig(
            embedding="hashed",
            hashed_fields=get_domain("biomedical").field_map(),
            n_pairs=40,
            use_contrastive=True,
        )
        with obs.tracing() as tracer:
            MetadataPipeline(config).fit(ckg_train[:10])
        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {
            "fit", "fit.embedding", "fit.bootstrap",
            "fit.contrastive", "fit.centroids", "contrastive.fit",
        } <= names
        _, parents = _span_tree(spans)
        assert parents["fit.bootstrap"] == {"fit"}
        assert parents["contrastive.fit"] == {"fit.contrastive"}
        fit = next(s for s in spans if s.name == "fit")
        assert fit.attributes["n_tables"] == 10


class TestStageHookCompose:
    """Regression: installing a second stage hook must not clobber the first."""

    def test_add_stage_hook_composes(self, hashed_pipeline, ckg_eval):
        first: list[str] = []
        second: list[str] = []
        hook_a = lambda stage, seconds: first.append(stage)  # noqa: E731
        hook_b = lambda stage, seconds: second.append(stage)  # noqa: E731
        hashed_pipeline.add_stage_hook(hook_a)
        hashed_pipeline.add_stage_hook(hook_b)
        try:
            hashed_pipeline.classify(ckg_eval[0].table)
        finally:
            hashed_pipeline.remove_stage_hook(hook_a)
            hashed_pipeline.remove_stage_hook(hook_b)
        assert first == second
        assert "classify" in first

    def test_legacy_setter_still_works(self, hashed_pipeline, ckg_eval):
        calls: list[str] = []
        hook = lambda stage, seconds: calls.append(stage)  # noqa: E731
        hashed_pipeline.stage_hook = hook
        try:
            assert hashed_pipeline.stage_hook is hook
            hashed_pipeline.classify(ckg_eval[0].table)
        finally:
            hashed_pipeline.stage_hook = None
        assert "classify" in calls
        assert hashed_pipeline.stage_hook is None

    def test_add_is_idempotent(self, hashed_pipeline):
        calls: list[str] = []
        hook = lambda stage, seconds: calls.append(stage)  # noqa: E731
        hashed_pipeline.add_stage_hook(hook)
        hashed_pipeline.add_stage_hook(hook)
        try:
            hashed_pipeline._emit_stage("probe", 0.0)
        finally:
            hashed_pipeline.remove_stage_hook(hook)
        assert calls == ["probe"]
