"""Exporter round-trips: JSONL, Chrome trace_event, top-spans report."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.tracer import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("root", table="t1"):
        with tracer.span("embed"):
            with tracer.span("tokenize"):
                pass
            with tracer.span("aggregate"):
                pass
        with tracer.span("classify"):
            pass
    return tracer


def _nesting_check(events: list[dict]) -> None:
    """Every B has a matching E; per tid the pairs nest like brackets."""
    per_tid: dict[object, list] = {}
    for event in events:
        per_tid.setdefault(event["tid"], []).append(event)
    for tid_events in per_tid.values():
        stack = []
        for event in tid_events:
            assert event["ph"] in ("B", "E")
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack, "E without an open B"
                assert stack.pop() == event["name"]
        assert stack == [], "unclosed B events"


class TestChromeTrace:
    def test_events_balance_and_nest(self):
        tracer = _sample_tracer()
        events = obs.chrome_trace_events(tracer.spans())
        b = [e for e in events if e["ph"] == "B"]
        e = [e for e in events if e["ph"] == "E"]
        assert len(b) == len(e) == 5
        _nesting_check(events)

    def test_document_is_valid_json_and_round_trips(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.json"
        count = obs.write_chrome_trace(tracer.spans(), path)
        assert count == 5
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        _nesting_check(document["traceEvents"])

    def test_b_events_carry_span_identity_and_attributes(self):
        tracer = _sample_tracer()
        events = obs.chrome_trace_events(tracer.spans())
        root_b = next(
            e for e in events if e["ph"] == "B" and e["name"] == "root"
        )
        assert root_b["args"]["table"] == "t1"
        assert root_b["args"]["trace_id"]
        child_b = next(
            e for e in events if e["ph"] == "B" and e["name"] == "embed"
        )
        assert child_b["args"]["parent_id"] == root_b["args"]["span_id"]

    def test_timestamps_relative_to_first_span(self):
        tracer = _sample_tracer()
        events = obs.chrome_trace_events(tracer.spans())
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["ts"] >= 0 for e in events)

    def test_error_annotated(self):
        tracer = Tracer()
        try:
            with tracer.span("bad"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        (b_event,) = [
            e for e in obs.chrome_trace_events(tracer.spans())
            if e["ph"] == "B"
        ]
        assert b_event["args"]["error"] == "RuntimeError: nope"

    def test_empty_input(self):
        assert obs.chrome_trace_events([]) == []
        assert obs.chrome_trace([])["traceEvents"] == []

    def test_interleaved_threads_still_balance(self):
        """Worker spans from different traces on one thread stay valid."""
        import threading

        tracer = Tracer()

        def worker(ctx):
            with tracer.use_context(ctx):
                with tracer.span("item"):
                    pass

        with tracer.span("request-a") as a:
            ctx_a = a.context()
        with tracer.span("request-b") as b:
            ctx_b = b.context()
        t = threading.Thread(target=lambda: (worker(ctx_a), worker(ctx_b)))
        t.start()
        t.join()
        events = obs.chrome_trace_events(tracer.spans())
        _nesting_check(events)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        assert obs.write_jsonl(tracer.spans(), path) == 5
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 5
        by_name = {r["name"]: r for r in records}
        assert by_name["tokenize"]["parent_id"] == by_name["embed"]["span_id"]
        assert by_name["root"]["attributes"] == {"table": "t1"}
        assert all(r["duration_ms"] >= 0 for r in records)

    def test_stream_output(self):
        tracer = _sample_tracer()
        buffer = io.StringIO()
        obs.write_jsonl(tracer.spans(), buffer)
        assert len(buffer.getvalue().splitlines()) == 5

    def test_write_trace_picks_format_by_suffix(self, tmp_path):
        tracer = _sample_tracer()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        obs.write_trace(tracer.spans(), jsonl)
        obs.write_trace(tracer.spans(), chrome)
        assert len(jsonl.read_text().splitlines()) == 5  # one doc per line
        assert "traceEvents" in json.loads(chrome.read_text())


class TestTopSpansReport:
    def test_aggregates_and_self_time(self):
        tracer = _sample_tracer()
        report = obs.top_spans_report(tracer.spans())
        assert "root" in report and "tokenize" in report
        assert "(5 spans, 5 distinct names)" in report

    def test_empty(self):
        assert obs.top_spans_report([]) == "no spans recorded\n"

    def test_limit(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"name-{i}"):
                pass
        report = obs.top_spans_report(tracer.spans(), limit=2)
        # header + 2 rows + footer
        assert len(report.strip().splitlines()) == 4
