"""Shared fixtures.

The expensive objects (trained pipelines, generated corpora) are session
scoped; tests that mutate state build their own instances.  Pipeline
fixtures default to the hashed embedding backend so the suite stays
fast — Word2Vec/contextual training gets dedicated (small) tests.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.generator import GeneratorConfig, GSTGenerator
from repro.corpus.registry import build_split
from repro.corpus.vocabularies import get_domain
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


@pytest.fixture
def simple_table() -> Table:
    """A small relational table: 1 HMD row, 1 VMD-ish first column."""
    return Table(
        [
            ["State", "City", "Student enrollment", "Total civilians"],
            ["New York", "Ithaca", "19,639", "47"],
            ["New York", "Albany", "17,434", "37"],
            ["Indiana", "Muncie", "20,030", "25"],
        ],
        name="simple",
    )


@pytest.fixture
def hierarchical_table() -> Table:
    """Fig. 5-style table: 2 HMD levels, 1 VMD column, numeric data."""
    return Table(
        [
            ["", "Men", "", "Women", ""],
            ["Age categories", "Needed to Harm", "Needed to Treat",
             "Needed to Harm", "Needed to Treat"],
            ["12 to 15 years", "21,557", "17,800", "21,148", "22,000"],
            ["16 to 19 years", "34,095", "13,069", "122,747", "10,317"],
            ["20 to 29 years", "48,036", "6,660", "142,873", "7,060"],
        ],
        name="vaccine",
    )


@pytest.fixture
def hierarchical_annotation(hierarchical_table: Table) -> TableAnnotation:
    return TableAnnotation.from_depths(
        hierarchical_table.n_rows,
        hierarchical_table.n_cols,
        hmd_depth=2,
        vmd_depth=1,
    )


@pytest.fixture(scope="session")
def ckg_split():
    """A small deterministic CKG train/eval split."""
    return build_split("ckg", n_train=60, n_eval=25, seed=7)


@pytest.fixture(scope="session")
def ckg_train(ckg_split):
    return ckg_split[0]


@pytest.fixture(scope="session")
def ckg_eval(ckg_split):
    return ckg_split[1]


@pytest.fixture(scope="session")
def hashed_pipeline(ckg_train) -> MetadataPipeline:
    """Fast fitted pipeline: hashed embeddings with the domain field map."""
    fields = get_domain("biomedical").field_map()
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=fields,
        n_pairs=200,
        use_contrastive=False,
    )
    return MetadataPipeline(config).fit(ckg_train)


@pytest.fixture
def tiny_generator() -> GSTGenerator:
    """Small-table generator for structure-focused tests."""
    config = GeneratorConfig(
        domain=get_domain("biomedical"),
        data_rows=(4, 8),
        data_cols=(2, 4),
        html_fraction=1.0,
    )
    return GSTGenerator(config, seed=42)
