"""Tests for the warm model registry."""

from __future__ import annotations

import threading

import pytest

from repro.core.pipeline import MetadataPipeline
from repro.serve.registry import ModelRegistry


class TestRegistry:
    def test_register_and_get(self, model_archive):
        reg = ModelRegistry()
        pipeline = reg.register(model_archive, name="m")
        assert reg.get("m") is pipeline
        assert reg.get() is pipeline  # first model is the default
        assert reg.default_name == "m"
        assert "m" in reg
        assert len(reg) == 1

    def test_register_is_idempotent(self, model_archive):
        reg = ModelRegistry()
        first = reg.register(model_archive, name="m")
        second = reg.register(model_archive, name="m")
        assert first is second

    def test_name_defaults_to_stem(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive)
        assert reg.names() == [model_archive.stem]

    def test_unknown_model(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive, name="m")
        with pytest.raises(KeyError, match="nope"):
            reg.get("nope")

    def test_empty_registry(self):
        with pytest.raises(KeyError, match="empty"):
            ModelRegistry().get()

    def test_info_records_load(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive, name="m")
        info = reg.info("m")
        assert info.path == model_archive
        assert info.load_seconds > 0
        assert info.embedding_kind == "HashedEmbedding"

    def test_add_requires_fitted(self):
        reg = ModelRegistry()
        with pytest.raises(ValueError, match="fitted"):
            reg.add("m", MetadataPipeline())

    def test_add_in_memory(self, hashed_pipeline):
        reg = ModelRegistry()
        reg.add("mem", hashed_pipeline)
        assert reg.get("mem") is hashed_pipeline
        assert reg.default_name == "mem"

    def test_get_not_blocked_by_slow_load(
        self, model_archive, hashed_pipeline, monkeypatch
    ):
        # Regression: register() used to hold the registry lock across
        # load_pipeline(), stalling every get()/names()/health call for
        # the full deserialization time.
        import repro.serve.registry as registry_module

        reg = ModelRegistry()
        reg.add("fast", hashed_pipeline)
        started, release = threading.Event(), threading.Event()
        real_load = registry_module.load_pipeline

        def slow_load(path):
            started.set()
            assert release.wait(10), "test never released the load"
            return real_load(path)

        monkeypatch.setattr(registry_module, "load_pipeline", slow_load)
        loader = threading.Thread(
            target=reg.register, args=(model_archive,),
            kwargs={"name": "slow"}, daemon=True,
        )
        loader.start()
        assert started.wait(10)
        # The load is parked; lookups must still answer immediately.
        assert reg.get("fast") is hashed_pipeline
        assert reg.names() == ["fast"]
        release.set()
        loader.join(timeout=10)
        assert not loader.is_alive()
        assert "slow" in reg

    def test_concurrent_register_one_winner(self, model_archive):
        reg = ModelRegistry()
        seen: list[MetadataPipeline] = []

        def load() -> None:
            seen.append(reg.register(model_archive, name="m"))

        threads = [threading.Thread(target=load) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in seen}) == 1
