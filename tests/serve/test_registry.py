"""Tests for the warm model registry."""

from __future__ import annotations

import threading

import pytest

from repro.core.pipeline import MetadataPipeline
from repro.serve.registry import ModelRegistry


class TestRegistry:
    def test_register_and_get(self, model_archive):
        reg = ModelRegistry()
        pipeline = reg.register(model_archive, name="m")
        assert reg.get("m") is pipeline
        assert reg.get() is pipeline  # first model is the default
        assert reg.default_name == "m"
        assert "m" in reg
        assert len(reg) == 1

    def test_register_is_idempotent(self, model_archive):
        reg = ModelRegistry()
        first = reg.register(model_archive, name="m")
        second = reg.register(model_archive, name="m")
        assert first is second

    def test_name_defaults_to_stem(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive)
        assert reg.names() == [model_archive.stem]

    def test_unknown_model(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive, name="m")
        with pytest.raises(KeyError, match="nope"):
            reg.get("nope")

    def test_empty_registry(self):
        with pytest.raises(KeyError, match="empty"):
            ModelRegistry().get()

    def test_info_records_load(self, model_archive):
        reg = ModelRegistry()
        reg.register(model_archive, name="m")
        info = reg.info("m")
        assert info.path == model_archive
        assert info.load_seconds > 0
        assert info.embedding_kind == "HashedEmbedding"

    def test_add_requires_fitted(self):
        reg = ModelRegistry()
        with pytest.raises(ValueError, match="fitted"):
            reg.add("m", MetadataPipeline())

    def test_add_in_memory(self, hashed_pipeline):
        reg = ModelRegistry()
        reg.add("mem", hashed_pipeline)
        assert reg.get("mem") is hashed_pipeline
        assert reg.default_name == "mem"

    def test_get_not_blocked_by_slow_load(
        self, model_archive, hashed_pipeline, monkeypatch
    ):
        # Regression: register() used to hold the registry lock across
        # load_pipeline(), stalling every get()/names()/health call for
        # the full deserialization time.
        import repro.serve.registry as registry_module

        reg = ModelRegistry()
        reg.add("fast", hashed_pipeline)
        started, release = threading.Event(), threading.Event()
        real_load = registry_module.load_pipeline

        def slow_load(path):
            started.set()
            assert release.wait(10), "test never released the load"
            return real_load(path)

        monkeypatch.setattr(registry_module, "load_pipeline", slow_load)
        loader = threading.Thread(
            target=reg.register, args=(model_archive,),
            kwargs={"name": "slow"}, daemon=True,
        )
        loader.start()
        assert started.wait(10)
        # The load is parked; lookups must still answer immediately.
        assert reg.get("fast") is hashed_pipeline
        assert reg.names() == ["fast"]
        release.set()
        loader.join(timeout=10)
        assert not loader.is_alive()
        assert "slow" in reg

    def test_concurrent_register_one_winner(self, model_archive):
        reg = ModelRegistry()
        seen: list[MetadataPipeline] = []

        def load() -> None:
            seen.append(reg.register(model_archive, name="m"))

        threads = [threading.Thread(target=load) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in seen}) == 1


class TestConcurrentReload:
    def test_reload_swaps_atomically(self, model_archive):
        reg = ModelRegistry()
        old = reg.register(model_archive, name="m")
        new, retired = reg.reload(model_archive, name="m")
        assert retired is old
        assert new is not old
        assert reg.get("m") is new
        assert reg.info("m").generation == 1

    def test_reload_of_unregistered_name_retires_nothing(
        self, model_archive
    ):
        reg = ModelRegistry()
        pipeline, retired = reg.reload(model_archive, name="fresh")
        assert retired is None
        assert reg.get("fresh") is pipeline
        assert reg.info("fresh").generation == 0

    def test_gets_never_see_a_half_loaded_model(self, model_archive):
        # 8 reader threads hammer get() while reloads swap generations
        # underneath them: every observed pipeline must be fully loaded
        # (an embedder exists), and each displaced generation must be
        # handed back to exactly one reload call.
        reg = ModelRegistry()
        reg.register(model_archive, name="m")
        stop = threading.Event()
        bad: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                pipeline = reg.get("m")
                if pipeline.embedder is None or not pipeline.is_fitted:
                    bad.append("half-loaded pipeline observed")

        readers = [threading.Thread(target=reader) for _ in range(8)]
        for t in readers:
            t.start()
        retired: list[MetadataPipeline] = []
        retired_lock = threading.Lock()

        def reloader() -> None:
            _new, old = reg.reload(model_archive, name="m")
            assert old is not None
            with retired_lock:
                retired.append(old)

        reloaders = [threading.Thread(target=reloader) for _ in range(4)]
        for t in reloaders:
            t.start()
        for t in reloaders:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert bad == []
        # Four swaps displaced four distinct generations — no pipeline
        # was retired twice, none was lost.
        assert len(retired) == 4
        assert len({id(p) for p in retired}) == 4
        assert reg.info("m").generation == 4
        assert reg.get("m").embedder is not None
