"""End-to-end tests for the HTTP classification service.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven with
``urllib`` — CSV and JSON bodies, batch requests, health, metrics, and
the result cache.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.serve.batching import BatchingConfig
from repro.serve.httpd import ClassificationService, make_server
from repro.tables.csvio import table_to_csv


@pytest.fixture
def service(registry):
    svc = ClassificationService(
        registry,
        batching=BatchingConfig(workers=2, max_delay=0.002),
        cache_capacity=128,
    )
    yield svc
    svc.close()


@pytest.fixture
def base_url(service):
    server = make_server(service, port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _post(url: str, body: bytes, content_type: str) -> dict:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


def _metric(text: str, needle: str) -> float:
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {needle!r} not found")


class TestClassifyEndpoint:
    def test_csv_matches_direct(self, base_url, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        record = _post(
            f"{base_url}/classify", table_to_csv(table).encode(), "text/csv"
        )
        direct = hashed_pipeline.classify(table)
        assert record["row_labels"] == [str(l) for l in direct.row_labels]
        assert record["col_labels"] == [str(l) for l in direct.col_labels]
        assert record["hmd_depth"] == direct.hmd_depth
        assert record["cached"] is False

    def test_json_matches_direct(self, base_url, hashed_pipeline, ckg_eval):
        table = ckg_eval[1].table
        body = json.dumps(
            {"name": table.name, "rows": [list(r) for r in table.rows]}
        ).encode()
        record = _post(f"{base_url}/classify", body, "application/json")
        direct = hashed_pipeline.classify(table)
        assert record["row_labels"] == [str(l) for l in direct.row_labels]
        assert record["vmd_depth"] == direct.vmd_depth

    def test_second_identical_request_is_cached(
        self, base_url, service, ckg_eval
    ):
        body = table_to_csv(ckg_eval[2].table).encode()
        first = _post(f"{base_url}/classify", body, "text/csv")
        second = _post(f"{base_url}/classify", body, "text/csv")
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["row_labels"] == first["row_labels"]
        # ... and the hit shows up in /metrics.
        _, metrics = _get(f"{base_url}/metrics")
        assert _metric(metrics, "repro_cache_hits_total") >= 1

    def test_batch_endpoint(self, base_url, hashed_pipeline, ckg_eval):
        tables = [item.table for item in ckg_eval[:4]]
        body = json.dumps(
            {"tables": [{"rows": [list(r) for r in t.rows]} for t in tables]}
        ).encode()
        payload = _post(
            f"{base_url}/classify/batch", body, "application/json"
        )
        assert payload["count"] == 4
        for record, table in zip(payload["results"], tables):
            direct = hashed_pipeline.classify(table)
            assert record["row_labels"] == [
                str(l) for l in direct.row_labels
            ]


class TestObservability:
    def test_healthz(self, base_url):
        status, body = _get(f"{base_url}/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["default"] == "default"
        assert payload["models"] == ["default"]

    def test_metrics_counters_advance(self, base_url, ckg_eval):
        _, before = _get(f"{base_url}/metrics")
        body = table_to_csv(ckg_eval[3].table).encode()
        _post(f"{base_url}/classify", body, "text/csv")
        _, after = _get(f"{base_url}/metrics")
        needle = 'repro_requests_total{endpoint="/classify"}'
        before_n = (
            _metric(before, needle) if needle in before else 0.0
        )
        assert _metric(after, needle) == before_n + 1
        assert _metric(after, 'repro_responses_total{code="200"}') >= 1
        assert 'quantile="p95"' in after

    def test_stage_timings_exported(self, base_url, ckg_eval):
        body = table_to_csv(ckg_eval[4].table).encode()
        _post(f"{base_url}/classify", body, "text/csv")
        _, metrics = _get(f"{base_url}/metrics")
        assert 'repro_stage_seconds_count{stage="classify"}' in metrics


class TestErrors:
    def test_empty_body_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/classify", b"", "text/csv")
        assert err.value.code == 400

    def test_malformed_json_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/classify", b"{oops", "application/json")
        assert err.value.code == 400

    def test_unknown_model_is_404(self, base_url, ckg_eval):
        body = table_to_csv(ckg_eval[0].table).encode()
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/classify?model=ghost", body, "text/csv")
        assert err.value.code == 404

    def test_unknown_endpoint_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base_url}/nope")
        assert err.value.code == 404

    def test_unknown_paths_fold_into_other_label(self, base_url):
        # Scanned/garbage paths must not create per-path counters (or
        # break the exposition format with quotes/backslashes).
        for path in ('/nope', '/sc"an\\me', "/x/y/z"):
            with pytest.raises(urllib.error.HTTPError):
                _get(base_url + urllib.parse.quote(path))
        _, metrics = _get(f"{base_url}/metrics")
        assert _metric(metrics, 'repro_requests_total{endpoint="other"}') >= 3
        assert "nope" not in metrics
        assert "scan" not in metrics

    def test_bad_model_does_not_poison_batchmates(self, registry, ckg_eval):
        # A big deadline + one worker so both requests share a batch:
        # the unknown-model item must fail alone, not its batchmate.
        svc = ClassificationService(
            registry,
            batching=BatchingConfig(
                workers=1, max_batch_size=8, max_delay=0.2
            ),
        )
        try:
            table = ckg_eval[0].table
            bad = svc._executor.submit(("ghost", table, None))
            good = svc._executor.submit(("", table, None))
            with pytest.raises(KeyError, match="ghost"):
                bad.result(timeout=10)
            record = good.result(timeout=10)
            assert record["row_labels"]
        finally:
            svc.close()

    def test_bad_batch_payload_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                f"{base_url}/classify/batch",
                json.dumps({"tables": []}).encode(),
                "application/json",
            )
        assert err.value.code == 400


class TestServiceDirect:
    def test_needs_a_model(self):
        from repro.serve.registry import ModelRegistry

        with pytest.raises(ValueError, match="model"):
            ClassificationService(ModelRegistry())

    def test_close_drains(self, registry, ckg_eval):
        svc = ClassificationService(
            registry, batching=BatchingConfig(workers=2)
        )
        records = svc.classify_many(
            [item.table for item in ckg_eval[:8]]
        )
        svc.close()
        assert len(records) == 8
        svc.close()  # idempotent


class TestReadiness:
    def test_ready_probe_answers_200_when_serving(self, base_url):
        status, body = _get(f"{base_url}/healthz?ready=1")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["status"] == "ok"

    def test_liveness_stays_200_without_ready_flag(self, base_url):
        status, body = _get(f"{base_url}/healthz")
        assert status == 200
        assert "ready" not in json.loads(body)

    def test_unready_service_answers_503_with_retry_after(
        self, registry
    ):
        svc = ClassificationService(
            registry, batching=BatchingConfig(workers=1)
        )
        server = make_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            svc.close()  # a closed service must leave rotation
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{host}:{port}/healthz?ready=1")
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "1"
            payload = json.loads(err.value.read().decode())
            assert payload["ready"] is False
            # Liveness still answers 200: the process is up.
            status, _body = _get(f"http://{host}:{port}/healthz")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()

    def test_service_ready_reflects_close(self, registry):
        svc = ClassificationService(
            registry, batching=BatchingConfig(workers=1)
        )
        assert svc.ready() is True
        svc.close()
        assert svc.ready() is False


class TestAdminReload:
    @pytest.fixture
    def archive_v2(self, hashed_pipeline, tmp_path):
        from repro.core.persistence import save_pipeline

        return save_pipeline(hashed_pipeline, tmp_path / "v2.npz")

    def test_thread_mode_reload_flips_generation(
        self, base_url, service, archive_v2, ckg_eval
    ):
        body = table_to_csv(ckg_eval[5].table).encode()
        first = _post(f"{base_url}/classify", body, "text/csv")
        outcome = _post(
            f"{base_url}/admin/reload",
            json.dumps(
                {"path": str(archive_v2), "name": "default"}
            ).encode(),
            "application/json",
        )
        assert outcome["status"] == "flipped"
        assert outcome["generation"] == 1
        # Stale cached results were dropped with the old generation.
        again = _post(f"{base_url}/classify", body, "text/csv")
        assert again["cached"] is False
        assert again["row_labels"] == first["row_labels"]
        _, metrics = _get(f"{base_url}/metrics")
        assert (
            _metric(metrics, 'repro_reloads_total{outcome="flipped"}') == 1
        )

    def test_reload_without_path_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/admin/reload", b"{}", "application/json")
        assert err.value.code == 400

    def test_reload_bad_canary_is_400(self, base_url, archive_v2):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                f"{base_url}/admin/reload",
                json.dumps(
                    {"path": str(archive_v2), "canary": "lots"}
                ).encode(),
                "application/json",
            )
        assert err.value.code == 400

    def test_reload_with_procs_backend_is_400(
        self, registry, model_archive
    ):
        svc = ClassificationService(registry, procs=1)
        try:
            with pytest.raises(ValueError, match="--fleet"):
                svc.reload(str(model_archive))
        finally:
            svc.close()


class TestDegenerateTables:
    """Degenerate tables over the wire must classify, not 500."""

    @pytest.mark.parametrize(
        "name,rows",
        [
            ("single-row", [["Region", "Cases", "Deaths"]]),
            ("single-col", [["Region"], ["North"], ["South"]]),
            ("one-by-one", [["x"]]),
            ("all-numeric", [["1", "2"], ["3", "4"], ["5", "6"]]),
            ("all-blank", [["", ""], ["", ""]]),
        ],
    )
    def test_json_degenerate_classifies(self, base_url, name, rows):
        body = json.dumps({"name": name, "rows": rows}).encode()
        record = _post(f"{base_url}/classify", body, "application/json")
        assert len(record["row_labels"]) == len(rows)
        assert len(record["col_labels"]) == (len(rows[0]) if rows else 0)

    def test_zero_row_table_classifies(self, base_url):
        body = json.dumps({"name": "empty", "rows": []}).encode()
        record = _post(f"{base_url}/classify", body, "application/json")
        assert record["row_labels"] == []
        assert record["col_labels"] == []
        assert record["hmd_depth"] == 0

    def test_degenerate_batch(self, base_url):
        body = json.dumps(
            {"tables": [{"rows": []}, {"rows": [["x"]]}, {"rows": [["1"]]}]}
        ).encode()
        payload = _post(f"{base_url}/classify/batch", body, "application/json")
        assert payload["count"] == 3
        assert payload["results"][0]["row_labels"] == []
        assert len(payload["results"][1]["row_labels"]) == 1
