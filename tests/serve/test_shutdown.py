"""Graceful-shutdown regression: a real ``repro serve`` subprocess.

SIGTERM (the deployment default — what an init system or orchestrator
sends) must drain in-flight work and exit 0, not die with a traceback
and stranded requests.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_http(port: int, process: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            _, stderr = process.communicate()
            raise AssertionError(
                f"serve exited early ({process.returncode}):\n{stderr}"
            )
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz?ready=1", timeout=2
            ) as response:
                if response.status == 200:
                    return
        except OSError:
            time.sleep(0.1)
    raise AssertionError("serve never became ready")


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_sigterm_drains_and_exits_cleanly(model_archive, sig):
    port = _free_port()
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "-v", "serve",
            "--model", str(model_archive),
            "--port", str(port), "--workers", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        _wait_for_http(port, process, timeout=60)
        # Prove it serves, then interrupt it.
        body = json.dumps({"rows": [["a", "b"], ["1", "2"]]}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/classify",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
        process.send_signal(sig)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    assert "interrupt received, draining" in stderr
    assert "drained; service closed" in stderr
    assert "Traceback" not in stderr
