"""Serving-layer fixtures: a saved model archive and a warm registry."""

from __future__ import annotations

import pytest

from repro.core.persistence import save_pipeline
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="session")
def model_archive(hashed_pipeline, tmp_path_factory):
    """The session pipeline saved once to disk."""
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    return save_pipeline(hashed_pipeline, path)


@pytest.fixture
def registry(model_archive):
    reg = ModelRegistry()
    reg.register(model_archive, name="default")
    return reg
