"""Tests for the micro-batching executor."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batching import BatchingConfig, BatchingExecutor


def _echo(batch):
    return [item * 2 for item in batch]


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_delay=-1)
        with pytest.raises(ValueError):
            BatchingConfig(workers=0)


class TestExecution:
    def test_single_item(self):
        with BatchingExecutor(_echo, BatchingConfig(workers=1)) as ex:
            assert ex.submit(21).result(timeout=5) == 42

    def test_map_preserves_order(self):
        with BatchingExecutor(_echo, BatchingConfig(workers=4)) as ex:
            assert ex.map(list(range(50))) == [i * 2 for i in range(50)]

    def test_batches_group_under_load(self):
        sizes: list[int] = []
        config = BatchingConfig(max_batch_size=8, max_delay=0.05, workers=2)
        with BatchingExecutor(
            _echo, config, on_batch=sizes.append
        ) as ex:
            ex.map(list(range(32)))
        assert sum(sizes) == 32
        # With a generous deadline the 32 items cannot all ride alone.
        assert max(sizes) > 1

    def test_zero_delay_still_completes(self):
        config = BatchingConfig(max_delay=0.0, workers=2)
        with BatchingExecutor(_echo, config) as ex:
            assert ex.map([1, 2, 3]) == [2, 4, 6]

    def test_handler_error_fails_batch_only(self):
        def flaky(batch):
            if any(item < 0 for item in batch):
                raise RuntimeError("negative input")
            return batch

        config = BatchingConfig(max_batch_size=1, max_delay=0.0, workers=1)
        with BatchingExecutor(flaky, config) as ex:
            bad = ex.submit(-1)
            good = ex.submit(5)
            with pytest.raises(RuntimeError, match="negative"):
                bad.result(timeout=5)
            assert good.result(timeout=5) == 5

    def test_result_count_mismatch_raises(self):
        with BatchingExecutor(
            lambda batch: [], BatchingConfig(workers=1)
        ) as ex:
            with pytest.raises(RuntimeError, match="results"):
                ex.submit(1).result(timeout=5)

    def test_exception_result_fails_only_that_item(self):
        def isolating(batch):
            return [
                ValueError(f"bad {item}") if item < 0 else item
                for item in batch
            ]

        # A big deadline so both items share one batch.
        config = BatchingConfig(max_batch_size=8, max_delay=0.2, workers=1)
        with BatchingExecutor(isolating, config) as ex:
            bad = ex.submit(-1)
            good = ex.submit(5)
            with pytest.raises(ValueError, match="bad -1"):
                bad.result(timeout=5)
            assert good.result(timeout=5) == 5

    def test_full_queue_does_not_deadlock(self):
        # Regression: submit() used to hold the executor lock across a
        # blocking put() on the bounded queue, which could deadlock
        # against the collector needing the same lock in _dispatch.
        def slow(batch):
            time.sleep(0.002)
            return batch

        config = BatchingConfig(
            max_batch_size=2, max_delay=0.001, workers=1, queue_capacity=1
        )
        results: dict[int, list[int]] = {}

        def worker(seed: int, ex: BatchingExecutor) -> None:
            results[seed] = ex.map(list(range(seed, seed + 25)))

        with BatchingExecutor(slow, config) as ex:
            threads = [
                threading.Thread(target=worker, args=(s, ex), daemon=True)
                for s in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not any(t.is_alive() for t in threads), "deadlocked"
        for seed, out in results.items():
            assert out == list(range(seed, seed + 25))


class TestShutdown:
    def test_drains_enqueued_work(self):
        done = []

        def slow(batch):
            time.sleep(0.01)
            done.extend(batch)
            return batch

        ex = BatchingExecutor(
            slow, BatchingConfig(max_batch_size=4, max_delay=0.001, workers=2)
        )
        futures = [ex.submit(i) for i in range(20)]
        ex.shutdown(drain=True)
        assert sorted(done) == list(range(20))
        assert all(f.done() for f in futures)

    def test_submit_after_shutdown_raises(self):
        ex = BatchingExecutor(_echo)
        ex.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            ex.submit(1)

    def test_shutdown_twice_is_noop(self):
        ex = BatchingExecutor(_echo)
        ex.shutdown()
        ex.shutdown()

    def test_shutdown_racing_submitters_leaves_no_hung_future(self):
        # Every future obtained from submit() must eventually complete —
        # either with a result or with the shutdown RuntimeError — even
        # when shutdown() races the submitting threads.
        futures = []
        lock = threading.Lock()

        def submitter(ex: BatchingExecutor) -> None:
            for i in range(50):
                try:
                    f = ex.submit(i)
                except RuntimeError:
                    return
                with lock:
                    futures.append(f)

        ex = BatchingExecutor(_echo, BatchingConfig(workers=2))
        threads = [
            threading.Thread(target=submitter, args=(ex,), daemon=True)
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        ex.shutdown(drain=True)
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        for f in futures:
            try:
                assert f.result(timeout=10) % 2 == 0
            except RuntimeError as exc:
                assert "shut down" in str(exc)

    def test_concurrent_submitters(self):
        results: dict[int, list[int]] = {}

        def worker(seed: int, ex: BatchingExecutor) -> None:
            results[seed] = ex.map([seed * 10 + i for i in range(10)])

        with BatchingExecutor(_echo, BatchingConfig(workers=4)) as ex:
            threads = [
                threading.Thread(target=worker, args=(s, ex))
                for s in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for seed, out in results.items():
            assert out == [(seed * 10 + i) * 2 for i in range(10)]
