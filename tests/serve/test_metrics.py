"""Tests for the metrics registry and Prometheus rendering."""

from __future__ import annotations

from repro.serve.metrics import LatencyRing, ServiceMetrics, quantile


class TestQuantile:
    def test_empty(self):
        assert quantile([], 0.5) == 0.0

    def test_single(self):
        assert quantile([3.0], 0.95) == 3.0

    def test_median_and_tail(self):
        values = sorted(float(i) for i in range(1, 101))
        assert quantile(values, 0.5) == 51.0
        assert quantile(values, 0.95) == 95.0


class TestLatencyRing:
    def test_wraps_at_capacity(self):
        ring = LatencyRing(4)
        for i in range(10):
            ring.observe(float(i))
        assert len(ring) == 4
        assert ring.snapshot() == [6.0, 7.0, 8.0, 9.0]

    def test_rejects_bad_size(self):
        import pytest

        with pytest.raises(ValueError):
            LatencyRing(0)


class TestServiceMetrics:
    def test_counters_accumulate(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="/classify")
        metrics.inc("requests_total", endpoint="/classify")
        metrics.inc("requests_total", endpoint="/healthz")
        assert metrics.counter("requests_total", endpoint="/classify") == 2
        assert metrics.counter("requests_total", endpoint="/healthz") == 1
        assert metrics.counter("requests_total", endpoint="/missing") == 0

    def test_stage_accumulation(self):
        metrics = ServiceMetrics()
        metrics.observe_stage("classify", 0.5)
        metrics.observe_stage("classify", 0.25)
        text = metrics.render()
        assert 'repro_stage_seconds_sum{stage="classify"} 0.75' in text
        assert 'repro_stage_seconds_count{stage="classify"} 2' in text

    def test_render_format(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="/classify")
        metrics.observe_request(0.01)
        text = metrics.render(extra={"cache_hit_ratio": 0.5})
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="/classify"} 1' in text
        assert 'repro_request_latency_seconds{quantile="p50"}' in text
        assert 'repro_request_latency_seconds{quantile="p95"}' in text
        assert "# TYPE repro_cache_hit_ratio gauge" in text
        assert "repro_cache_hit_ratio 0.5" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint='we"ird\\path\nend')
        text = metrics.render()
        assert r'endpoint="we\"ird\\path\nend"' in text
        assert "\npath" not in text  # no raw newline inside a label

    def test_latency_quantiles_from_ring(self):
        metrics = ServiceMetrics()
        for ms in (1, 2, 3, 4, 100):
            metrics.observe_request(ms / 1000)
        text = metrics.render()
        assert 'quantile="p50"} 0.003' in text
        assert 'quantile="p95"} 0.100' in text
