"""Tests for the LRU result cache."""

from __future__ import annotations

import threading

from repro.serve.cache import LRUCache


class TestLRU:
    def test_get_put(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" is now most recent
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_overwrite_keeps_size(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestStats:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        cache.get("x")
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_ratio == 2 / 3
        assert stats.size == 1
        assert stats.capacity == 4

    def test_eviction_count(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats().evictions == 2

    def test_empty_ratio(self):
        assert LRUCache(4).stats().hit_ratio == 0.0


class TestConcurrency:
    def test_parallel_mixed_workload(self):
        cache = LRUCache(64)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * i) % 100
                    cache.put(key, key)
                    got = cache.get(key)
                    assert got is None or got == key
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
