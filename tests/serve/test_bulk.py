"""Tests for the offline bulk path."""

from __future__ import annotations

import json

import pytest

from repro.serve.bulk import (
    classify_cached,
    classify_paths,
    iter_table_paths,
    result_record,
    table_from_path,
    table_from_text,
    write_jsonl,
)
from repro.serve.cache import LRUCache
from repro.serve.metrics import ServiceMetrics
from repro.tables.csvio import table_to_csv


@pytest.fixture
def table_dir(tmp_path, ckg_eval):
    for i, item in enumerate(ckg_eval[:6]):
        (tmp_path / f"t{i:02d}.csv").write_text(table_to_csv(item.table))
    (tmp_path / "notes.txt").write_text("not a table")
    return tmp_path


class TestPathExpansion:
    def test_directory_filters_suffixes(self, table_dir):
        paths = iter_table_paths([table_dir])
        assert len(paths) == 6
        assert all(p.suffix == ".csv" for p in paths)

    def test_glob(self, table_dir):
        paths = iter_table_paths([str(table_dir / "t0*.csv")])
        assert len(paths) == 6

    def test_explicit_file_and_dedup(self, table_dir):
        one = table_dir / "t00.csv"
        paths = iter_table_paths([one, table_dir])
        assert paths.count(one) == 1

    def test_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_table_paths([tmp_path / "absent-*.csv"])

    def test_overlapping_glob_and_dir_dedupes(self, table_dir):
        # Regression: a file reached through both a glob and its parent
        # directory used to be classified (and billed) twice.
        paths = iter_table_paths([str(table_dir / "*.csv"), str(table_dir)])
        assert len(paths) == 6
        assert len(set(paths)) == 6

    def test_spelling_variants_dedupe(self, table_dir):
        dotted = table_dir / "." / "t00.csv"
        paths = iter_table_paths([table_dir / "t00.csv", dotted])
        assert len(paths) == 1

    def test_dedupe_is_order_stable(self, table_dir):
        favorite = table_dir / "t03.csv"
        paths = iter_table_paths([favorite, table_dir])
        assert paths[0] == favorite
        assert len(paths) == 6


class TestTableLoading:
    def test_csv_json_markdown(self, tmp_path, ckg_eval):
        from repro.tables.jsonio import table_to_json
        from repro.tables.markdown import table_to_markdown

        table = ckg_eval[0].table
        (tmp_path / "a.csv").write_text(table_to_csv(table))
        (tmp_path / "a.json").write_text(table_to_json(table))
        (tmp_path / "a.md").write_text(table_to_markdown(table))
        for name in ("a.csv", "a.json", "a.md"):
            loaded = table_from_path(tmp_path / name)
            assert loaded.shape == table.shape

    def test_extensionless_path_content_sniffs(self, tmp_path, ckg_eval):
        # Regression: dispatch used to be extension-only, so stdin and
        # extensionless files always parsed as CSV.
        from repro.tables.jsonio import table_to_json
        from repro.tables.markdown import table_to_markdown

        table = ckg_eval[0].table
        for i, text in enumerate(
            (table_to_json(table), table_to_markdown(table))
        ):
            path = tmp_path / f"payload{i}"
            path.write_text(text)
            assert table_from_path(path).shape == table.shape

    def test_text_sniffs_html(self):
        loaded = table_from_text(
            "<table><tr><td>a</td><td>b</td></tr></table>", name="stdin"
        )
        assert loaded.rows == (("a", "b"),)

    def test_text_sniffs_jsonl_as_one_table(self):
        loaded = table_from_text('["h1","h2"]\n["1","2"]\n["3","4"]\n')
        assert loaded.rows == (("h1", "h2"), ("1", "2"), ("3", "4"))

    def test_jsonl_objects_project_onto_first_keys(self):
        text = (
            '{"name": "a", "value": "1"}\n'
            '{"name": "b"}\n'
            '{"value": "2", "name": "c", "extra": "x"}\n'
        )
        loaded = table_from_text(text, suffix=".jsonl")
        assert loaded.rows == (
            ("name", "value"),
            ("a", "1"),
            ("b", ""),
            ("c", "2"),
        )

    def test_jsonl_rejections_are_value_errors(self):
        # The fuzzer contract: every malformed input raises ValueError.
        for text in ('{"a": 1}\n[', '"scalar"\n', "\n \n"):
            with pytest.raises(ValueError):
                table_from_text(text, suffix=".jsonl")

    def test_unknown_suffix_falls_back_to_sniffing(self, tmp_path):
        path = tmp_path / "export.dat"
        path.write_text("x,y\n1,2\n")
        assert table_from_path(path).rows == (("x", "y"), ("1", "2"))


class TestClassifyCached:
    def test_second_call_hits(self, hashed_pipeline, ckg_eval):
        cache = LRUCache(8)
        table = ckg_eval[0].table
        first, hit1 = classify_cached(hashed_pipeline, table, cache)
        second, hit2 = classify_cached(hashed_pipeline, table, cache)
        assert (hit1, hit2) == (False, True)
        assert first.row_labels == second.row_labels

    def test_no_cache_passthrough(self, hashed_pipeline, ckg_eval):
        annotation, hit = classify_cached(
            hashed_pipeline, ckg_eval[0].table, None
        )
        assert not hit
        assert annotation.row_labels

    def test_two_models_never_share_entries(self, hashed_pipeline, ckg_eval):
        """The key carries the model name: the same table under two
        registered model names must resolve independently."""
        cache = LRUCache(16)
        table = ckg_eval[0].table
        _, hit_a = classify_cached(hashed_pipeline, table, cache, model="a")
        _, hit_b = classify_cached(hashed_pipeline, table, cache, model="b")
        assert (hit_a, hit_b) == (False, False)
        assert classify_cached(
            hashed_pipeline, table, cache, model="a"
        )[1] is True

    def test_two_pipelines_never_share_entries(self, hashed_pipeline, ckg_eval):
        """Regression: cache keys carry a pipeline identity token, so a
        second pipeline under the *same model name* must not be served
        the first pipeline's annotations."""
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        other = MetadataPipeline(
            PipelineConfig(
                embedding="hashed", hashed_dim=16, n_pairs=50,
                use_contrastive=False,
            )
        ).fit([item.table for item in ckg_eval[:12]])
        cache = LRUCache(16)
        table = ckg_eval[0].table
        first, hit1 = classify_cached(
            hashed_pipeline, table, cache, model="m"
        )
        second, hit2 = classify_cached(other, table, cache, model="m")
        assert (hit1, hit2) == (False, False)
        assert second == other.classify(table)
        # Each pipeline still hits its own entries afterwards.
        assert classify_cached(hashed_pipeline, table, cache, model="m") == (
            first, True
        )
        assert classify_cached(other, table, cache, model="m") == (
            second, True
        )


class TestClassifyTablesCached:
    def test_mixed_hits_and_misses(self, hashed_pipeline, ckg_eval):
        from repro.serve.bulk import classify_tables_cached

        tables = [item.table for item in ckg_eval[:4]]
        cache = LRUCache(16)
        classify_cached(hashed_pipeline, tables[0], cache)
        outcomes = classify_tables_cached(hashed_pipeline, tables, cache)
        assert len(outcomes) == len(tables)
        assert [hit for _, hit in outcomes] == [True, False, False, False]
        for table, (annotation, _) in zip(tables, outcomes):
            assert annotation == hashed_pipeline.classify(table)

    def test_failing_table_is_isolated(self, hashed_pipeline, ckg_eval):
        from repro.serve.bulk import classify_tables_cached
        from repro.tables.model import Table

        good = ckg_eval[0].table

        class _Poison(Table):
            def __init__(self):  # skip the frozen-dataclass init
                pass

            @property
            def rows(self):  # trip the corpus pass and the retry
                raise RuntimeError("poisoned grid")

        outcomes = classify_tables_cached(
            hashed_pipeline, [good, _Poison()], None
        )
        assert outcomes[0][0] == hashed_pipeline.classify(good)
        assert isinstance(outcomes[1][0], Exception)


class TestClassifyPaths:
    def test_matches_direct_classification(
        self, hashed_pipeline, table_dir, ckg_eval
    ):
        paths = iter_table_paths([table_dir])
        records = classify_paths(hashed_pipeline, paths, workers=4)
        assert len(records) == 6
        for record, item in zip(records, ckg_eval[:6]):
            direct = hashed_pipeline.classify(item.table)
            assert record["row_labels"] == [
                str(l) for l in direct.row_labels
            ]
            assert record["cached"] is False
            assert record["seconds"] >= 0

    def test_duplicate_inputs_hit_cache(self, hashed_pipeline, table_dir):
        paths = iter_table_paths([table_dir])
        cache = LRUCache(32)
        classify_paths(hashed_pipeline, paths, workers=2, cache=cache)
        records = classify_paths(
            hashed_pipeline, paths, workers=2, cache=cache
        )
        assert all(r["cached"] for r in records)
        assert cache.stats().hits >= 6

    def test_bad_file_yields_error_record(self, hashed_pipeline, tmp_path):
        good = tmp_path / "good.csv"
        good.write_text("a,b\n1,2\n")
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        metrics = ServiceMetrics()
        records = classify_paths(
            hashed_pipeline, [good, bad], workers=2, metrics=metrics
        )
        by_source = {r["source"]: r for r in records}
        assert "error" in by_source[str(bad)]
        assert "row_labels" in by_source[str(good)]
        assert metrics.counter("bulk_errors_total") == 1
        assert metrics.counter("bulk_tables_total") == 1


class TestOutput:
    def test_write_jsonl_path_and_stream(self, tmp_path):
        records = [{"a": 1}, {"b": 2}]
        out = tmp_path / "r.jsonl"
        assert write_jsonl(records, out) == 2
        lines = out.read_text().splitlines()
        assert [json.loads(line) for line in lines] == records

        import io

        buffer = io.StringIO()
        write_jsonl(records, buffer)
        assert buffer.getvalue().count("\n") == 2

    def test_result_record_shape(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        annotation = hashed_pipeline.classify(table)
        record = result_record(
            table, annotation, model="m", cached=True, seconds=0.5
        )
        assert record["model"] == "m"
        assert record["cached"] is True
        assert record["hmd_depth"] == annotation.hmd_depth
        assert len(record["row_labels"]) == table.n_rows
        assert len(record["col_labels"]) == table.n_cols


class TestGlobDirectories:
    def test_glob_matching_directories_recurses(self, tmp_path, ckg_eval):
        # A glob whose matches are directories must contribute their
        # table files, exactly like a literal directory spec would.
        for shard in ("shard-a", "shard-b"):
            sub = tmp_path / shard
            sub.mkdir()
            for i, item in enumerate(ckg_eval[:2]):
                (sub / f"t{i}.csv").write_text(table_to_csv(item.table))
            (sub / "notes.txt").write_text("not a table")
        paths = iter_table_paths([str(tmp_path / "shard-*")])
        assert len(paths) == 4
        assert all(p.suffix == ".csv" for p in paths)
        assert {p.parent.name for p in paths} == {"shard-a", "shard-b"}

    def test_glob_mixing_files_and_directories(self, tmp_path, ckg_eval):
        (tmp_path / "x-file.csv").write_text(table_to_csv(ckg_eval[0].table))
        sub = tmp_path / "x-dir"
        sub.mkdir()
        (sub / "inner.csv").write_text(table_to_csv(ckg_eval[1].table))
        paths = iter_table_paths([str(tmp_path / "x-*")])
        assert sorted(p.name for p in paths) == ["inner.csv", "x-file.csv"]


class TestCorpusStageHook:
    def test_classify_corpus_emits_classify_stages(self, ckg_train, ckg_eval):
        # classify_corpus must route through classify() so every table
        # records a "classify" stage timing (the serve metrics contract).
        from repro.core.pipeline import MetadataPipeline, PipelineConfig

        pipeline = MetadataPipeline(
            PipelineConfig(embedding="hashed", use_contrastive=False)
        ).fit(ckg_train[:15])
        stages: list[tuple[str, float]] = []
        pipeline.stage_hook = lambda stage, seconds: stages.append(
            (stage, seconds)
        )
        tables = [item.table for item in ckg_eval[:5]]
        annotations = pipeline.classify_corpus(tables)
        assert len(annotations) == 5
        classify_stages = [s for s in stages if s[0] == "classify"]
        assert len(classify_stages) == 5
        assert all(seconds >= 0 for _, seconds in classify_stages)
        for annotation, table in zip(annotations, tables):
            assert annotation == pipeline.classify(table)


class TestEncodingTolerance:
    """Non-UTF-8 table files must load, not crash the batch."""

    def test_latin1_csv_loads_with_replacement(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes("rég,année,café\nvaleur,2001,3\n".encode("latin-1"))
        table = table_from_path(path)
        assert table.n_rows == 2 and table.n_cols == 3
        # undecodable bytes degrade to U+FFFD, never to an exception
        assert "�" in "".join(table.row(0))

    def test_utf8_unchanged(self, tmp_path):
        path = tmp_path / "utf8.csv"
        path.write_text("rég,année\ncafé,2\n", encoding="utf-8")
        table = table_from_path(path)
        assert table.row(0) == ("rég", "année")

    def test_batch_with_mixed_encodings(self, tmp_path, hashed_pipeline):
        (tmp_path / "ok.csv").write_text("a,b\n1,2\n")
        (tmp_path / "latin.csv").write_bytes(
            "tête,corps\nxyz,1\n".encode("latin-1")
        )
        records = classify_paths(
            hashed_pipeline, iter_table_paths([tmp_path]), workers=1
        )
        assert len(records) == 2
        assert all("error" not in r for r in records)


class TestHtmlIngestion:
    """.html/.htm route through the span-expanding HTML parser."""

    MARKUP = (
        "<table><tr><th colspan=\"2\">Population</th><th>Year</th></tr>"
        "<tr><td>City</td><td>County</td><td>2020</td></tr>"
        "<tr><td>12</td><td>34</td><td>56</td></tr></table>"
    )

    def test_html_suffixes_are_picked_up(self, tmp_path):
        (tmp_path / "page.html").write_text(self.MARKUP)
        (tmp_path / "page2.htm").write_text(self.MARKUP)
        (tmp_path / "skip.txt").write_text("not a table")
        paths = iter_table_paths([tmp_path])
        assert [p.name for p in paths] == ["page.html", "page2.htm"]

    def test_colspan_expands_onto_the_grid(self, tmp_path):
        (tmp_path / "page.html").write_text(self.MARKUP)
        table = table_from_path(tmp_path / "page.html")
        assert table.n_cols == 3
        # colspan=2 expands: value in the anchor cell, blank continuation
        assert table.row(0)[0] == "Population"
        assert table.row(0)[2] == "Year"

    def test_html_classifies_in_bulk(self, tmp_path, hashed_pipeline):
        (tmp_path / "page.html").write_text(self.MARKUP)
        records = classify_paths(
            hashed_pipeline, iter_table_paths([tmp_path]), workers=1
        )
        assert len(records) == 1
        assert "error" not in records[0]
        assert records[0]["name"] == "page"


class TestRunBulkStreaming:
    """run_bulk wiring: the batch entry point rides the streaming plane."""

    @pytest.fixture
    def model(self, hashed_pipeline, tmp_path_factory):
        from repro.core.persistence import save_pipeline_dir

        path = tmp_path_factory.mktemp("store") / "model"
        return save_pipeline_dir(hashed_pipeline, path)

    def test_streaming_matches_legacy_path(self, model, table_dir, tmp_path):
        from repro.serve.bulk import run_bulk

        streamed = run_bulk(
            model, [str(table_dir)], out=tmp_path / "s.jsonl"
        )
        legacy = run_bulk(
            model,
            [str(table_dir)],
            out=tmp_path / "l.jsonl",
            streaming=False,
        )

        def norm(record):
            skip = ("seconds", "cached", "source", "model")
            return {k: v for k, v in record.items() if k not in skip}

        assert [norm(r) for r in streamed] == [norm(r) for r in legacy]

    def test_windowed_batch(self, model, table_dir, tmp_path):
        from repro.serve.bulk import run_bulk

        out = tmp_path / "o.jsonl"
        records = run_bulk(
            model, [str(table_dir)], out=out, window_rows=128
        )
        assert len(records) == 6
        assert all(r["windowed"] and r["window_exact"] for r in records)
        assert len(out.read_text().splitlines()) == 6

    def test_windowed_requires_streaming(self, model, table_dir, tmp_path):
        from repro.serve.bulk import run_bulk

        with pytest.raises(ValueError):
            run_bulk(
                model,
                [str(table_dir)],
                out=tmp_path / "o.jsonl",
                window_rows=16,
                streaming=False,
            )

    def test_sqlite_sink_spec(self, model, table_dir, tmp_path):
        import sqlite3

        from repro.serve.bulk import run_bulk

        db = tmp_path / "results.db"
        run_bulk(model, [str(table_dir)], out=f"sql:{db}#results")
        conn = sqlite3.connect(db)
        try:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        finally:
            conn.close()
        assert count == 6

    def test_metrics_wiring(self, model, table_dir, tmp_path):
        from repro.serve.bulk import run_bulk

        metrics = ServiceMetrics()
        run_bulk(
            model, [str(table_dir)], out=tmp_path / "o.jsonl", metrics=metrics
        )
        assert metrics.counter("ingest_tables_total") == 6
        rendered = metrics.render()
        assert "repro_ingest_queue_depth" in rendered
