"""Trace propagation through the serving layer.

The BatchingExecutor severs the thread-local span chain; the service
captures a TraceContext at submit time and restores it on the worker,
so a request's spans — including everything the pipeline emits on the
worker thread — stay in the request's trace.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve.batching import BatchingConfig
from repro.serve.httpd import ClassificationService, make_server
from repro.serve.metrics import ServiceMetrics
from repro.tables.csvio import table_to_csv


@pytest.fixture
def service(registry):
    svc = ClassificationService(
        registry,
        batching=BatchingConfig(workers=2, max_batch_size=4, max_delay=0.01),
    )
    yield svc
    svc.close()


class TestContextPropagation:
    def test_trace_id_survives_executor_handoff(self, service, ckg_eval):
        table = ckg_eval[0].table
        with obs.tracing() as tracer:
            with obs.span("request", trace_id="req-42"):
                service.classify_table(table)
        spans = tracer.spans()
        item = next(s for s in spans if s.name == "serve.item")
        assert item.trace_id == "req-42"
        # the pipeline's spans on the worker thread belong to the trace too
        classify = next(s for s in spans if s.name == "classify")
        assert classify.trace_id == "req-42"
        # ... even though they ran on a different thread
        request = next(s for s in spans if s.name == "request")
        assert item.thread_id != request.thread_id

    def test_serve_item_attributes(self, service, ckg_eval):
        table = ckg_eval[0].table
        with obs.tracing() as tracer:
            service.classify_table(table)  # cold: miss
            service.classify_table(table)  # warm: result-cache hit
        items = [s for s in tracer.spans() if s.name == "serve.item"]
        assert [s.attributes["cached"] for s in items] == [False, True]
        assert all(s.attributes["model"] == "default" for s in items)

    def test_concurrent_requests_never_share_spans(self, service, ckg_eval):
        """Distinct client requests keep distinct traces even when their
        items land in the same micro-batch on the same worker."""
        tables = [item.table for item in ckg_eval[:6]]
        trace_ids = [f"req-{i}" for i in range(len(tables))]
        barrier = threading.Barrier(len(tables))
        errors: list[Exception] = []

        def client(table, trace_id):
            try:
                barrier.wait(timeout=10)
                with obs.span("request", trace_id=trace_id):
                    service.classify_table(table)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with obs.tracing() as tracer:
            threads = [
                threading.Thread(target=client, args=(t, tid))
                for t, tid in zip(tables, trace_ids)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        spans = tracer.spans()
        items = [s for s in spans if s.name == "serve.item"]
        assert sorted(s.trace_id for s in items) == sorted(trace_ids)
        # every classify span sits in exactly one request's trace
        for s in spans:
            if s.name in ("classify", "embed", "serve.item"):
                assert s.trace_id in trace_ids, s.name
        # batch spans are their own roots, never part of a request trace
        for s in spans:
            if s.name == "serve.batch":
                assert s.trace_id not in trace_ids

    def test_untraced_requests_still_work(self, service, ckg_eval):
        record = service.classify_table(ckg_eval[0].table)
        assert record["row_labels"]


class TestServiceHookCompose:
    def test_service_does_not_clobber_existing_hook(self, registry, ckg_eval):
        """Regression: the service used to overwrite caller hooks."""
        seen: list[str] = []
        pipeline = registry.get("default")
        hook = lambda stage, seconds: seen.append(stage)  # noqa: E731
        pipeline.add_stage_hook(hook)
        metrics = ServiceMetrics()
        svc = ClassificationService(registry, metrics=metrics)
        try:
            svc.classify_table(ckg_eval[0].table)
        finally:
            svc.close()
            pipeline.remove_stage_hook(hook)
        assert "classify" in seen  # caller hook survived
        # ... and the service's metrics hook observed the stage too
        assert 'stage_seconds_count{stage="classify"}' in metrics.render()


class TestTraceIdHeader:
    @pytest.fixture
    def server(self, service):
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def test_response_carries_x_trace_id(self, server, ckg_eval):
        body = table_to_csv(ckg_eval[0].table).encode()
        request = urllib.request.Request(
            self._url(server, "/classify"), data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            trace_id = response.headers.get("X-Trace-Id")
            payload = json.loads(response.read())
        assert trace_id
        assert len(trace_id) == 16
        assert payload["row_labels"]

    def test_trace_ids_are_distinct_per_request(self, server):
        ids = set()
        for _ in range(3):
            with urllib.request.urlopen(
                self._url(server, "/healthz"), timeout=10
            ) as response:
                ids.add(response.headers["X-Trace-Id"])
        assert len(ids) == 3

    def test_error_responses_also_carry_the_header(self, server):
        request = urllib.request.Request(
            self._url(server, "/classify"), data=b"", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as err:
            assert err.code == 400
            assert err.headers.get("X-Trace-Id")

    def test_http_request_root_span_matches_header(self, server, ckg_eval):
        body = table_to_csv(ckg_eval[0].table).encode()
        with obs.tracing() as tracer:
            request = urllib.request.Request(
                self._url(server, "/classify"), data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                trace_id = response.headers["X-Trace-Id"]
        roots = [s for s in tracer.spans() if s.name == "http.request"]
        assert any(s.trace_id == trace_id for s in roots)
        matching = next(s for s in roots if s.trace_id == trace_id)
        assert matching.attributes["endpoint"] == "/classify"
        assert matching.attributes["method"] == "POST"
