"""End-to-end fleet tests: real spawned worker processes.

These exercise the full stack — ``ProcessLauncher`` spawning workers,
the socket protocol, crash recovery with ``os.kill``, blue/green
reloads under live traffic, overload shedding, and the HTTP front-end
(``/healthz?ready=1``, ``/metrics`` fleet series, ``/admin/reload``).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.fleet import FleetConfig, FleetRouter
from repro.serve.batching import ServiceOverloaded
from repro.tables.model import Table


@pytest.fixture
def table() -> Table:
    return Table(
        [
            ["State", "City", "Enrollment"],
            ["NY", "Ithaca", "19,639"],
            ["NY", "Albany", "17,434"],
        ],
        name="e2e",
    )


def _config(**overrides) -> FleetConfig:
    settings = dict(
        workers=2,
        spawn_timeout=120.0,
        health_interval=0.2,
        canary_min_requests=4,
        canary_timeout=20.0,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def _wait_until(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("condition not reached in time")


class _Pump:
    """Background request pump; collects unexpected errors."""

    def __init__(self, fleet: FleetRouter, table: Table, threads: int = 3):
        self.fleet = fleet
        self.table = table
        self.stop = threading.Event()
        self.errors: list[Exception] = []
        self.crashed: list[Exception] = []
        self.done = 0
        self._threads = [
            threading.Thread(target=self._run, daemon=True)
            for _ in range(threads)
        ]

    def _run(self) -> None:
        from repro.fleet import WorkerCrashed

        while not self.stop.is_set():
            try:
                self.fleet.submit(("m", self.table, None)).result(timeout=30)
                self.done += 1
            except ServiceOverloaded:
                time.sleep(0.01)  # shed: back off, not an error
            except WorkerCrashed as exc:
                self.crashed.append(exc)
            except Exception as exc:  # noqa: BLE001
                self.errors.append(exc)

    def __enter__(self) -> "_Pump":
        for t in self._threads:
            t.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop.set()
        for t in self._threads:
            t.join(30)


class TestFleetProcesses:
    def test_serves_and_propagates_traces(
        self, model_dir, hashed_pipeline, table
    ):
        with obs.tracing() as tracer:
            with FleetRouter({"m": model_dir}, config=_config()) as fleet:
                with obs.span("client") as root:
                    record = fleet.submit(
                        ("m", table, root.context())
                    ).result(timeout=30)
                futures = [
                    fleet.submit(("", table, None)) for _ in range(10)
                ]
                for future in futures:
                    assert future.result(timeout=30)["row_labels"]
                assert fleet.status()["requests_total"] == 11
        direct = hashed_pipeline.classify(table)
        assert record["row_labels"] == [str(l) for l in direct.row_labels]
        # The worker's spans crossed the socket and were grafted under
        # the router-side rpc span, in the client's trace.
        spans = tracer.spans()
        rpc = [s for s in spans if s.name == "fleet.rpc"]
        worker_spans = [s for s in spans if s.name == "fleet.worker"]
        assert len(rpc) == 1 and len(worker_spans) == 1
        assert worker_spans[0].parent_id == rpc[0].span_id
        assert worker_spans[0].trace_id == rpc[0].trace_id
        stage = next(s for s in spans if s.name == "classify")
        assert stage.trace_id == rpc[0].trace_id

    def test_killed_worker_restarts_without_collateral(
        self, model_dir, table
    ):
        with FleetRouter({"m": model_dir}, config=_config()) as fleet:
            with _Pump(fleet, table) as pump:
                _wait_until(lambda: pump.done >= 5, timeout=60)
                victim_pid = fleet.status()["workers"][0]["pid"]
                os.kill(victim_pid, signal.SIGKILL)
                _wait_until(
                    lambda: fleet.status()["alive"] == 2
                    and any(
                        w["restarts"] == 1
                        for w in fleet.status()["workers"]
                    ),
                    timeout=120,
                )
                before = pump.done
                _wait_until(lambda: pump.done >= before + 5, timeout=60)
            # Only requests in flight on the dead socket may fail, and
            # there is at most one in flight per socket.
            assert pump.errors == []
            assert len(pump.crashed) <= 1

    def test_blue_green_reload_drops_nothing(
        self, model_dir, model_dir_v2, table
    ):
        with FleetRouter({"m": model_dir}, config=_config()) as fleet:
            with _Pump(fleet, table) as pump:
                _wait_until(lambda: pump.done >= 3, timeout=60)
                outcome = fleet.reload(model_dir_v2, name="m", canary=0.25)
                after_flip = pump.done
                _wait_until(
                    lambda: pump.done >= after_flip + 3, timeout=60
                )
            assert outcome["status"] == "flipped"
            assert outcome["generation"] == 1
            assert pump.errors == []
            assert pump.crashed == []
            status = fleet.status()
            assert status["generation"] == 1
            assert status["alive"] == 2

    def test_overload_sheds_fast_and_serves_the_rest(
        self, model_dir, table
    ):
        config = _config(workers=1, queue_depth=2, deadline=30.0)
        with FleetRouter({"m": model_dir}, config=config) as fleet:
            accepted = []
            shed = 0
            slowest_shed = 0.0
            for _ in range(200):
                started = time.perf_counter()
                try:
                    accepted.append(fleet.submit(("m", table, None)))
                except ServiceOverloaded as exc:
                    shed += 1
                    slowest_shed = max(
                        slowest_shed, time.perf_counter() - started
                    )
                    assert exc.retry_after > 0
            assert shed > 0
            assert fleet.status()["shed_total"] == shed
            # Shedding is a synchronous fast-path rejection.
            assert slowest_shed < 0.25
            # Everything admitted completes.
            for future in accepted:
                assert future.result(timeout=60)["row_labels"]


def _get(url: str) -> tuple[int, dict | str, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            body = response.read().decode()
            headers = dict(response.headers)
            status = response.status
    except urllib.error.HTTPError as err:
        body = err.read().decode()
        headers = dict(err.headers)
        status = err.code
    try:
        return status, json.loads(body), headers
    except ValueError:
        return status, body, headers


def _post(url: str, payload: dict | bytes, content_type: str):
    body = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode()
    )
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


def _metric(text: str, needle: str) -> float:
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {needle!r} not found")


class TestFleetOverHTTP:
    @pytest.fixture
    def fleet_service(self, model_dir):
        from repro.serve.httpd import ClassificationService
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry()
        registry.register(model_dir, name="m")
        service = ClassificationService(
            registry,
            fleet=2,
            fleet_config=_config(canary_fraction=0.0),
        )
        yield service
        service.close()

    @pytest.fixture
    def base_url(self, fleet_service):
        from repro.serve.httpd import make_server

        server = make_server(fleet_service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def test_full_http_lifecycle(
        self, base_url, fleet_service, model_dir_v2, table
    ):
        # Readiness: quorum is up, so the probe says in-rotation.
        status, payload, _ = _get(f"{base_url}/healthz?ready=1")
        assert status == 200 and payload["ready"] is True
        assert payload["fleet"]["alive"] == 2

        # Classification flows through the worker fleet.
        body = json.dumps(
            {"name": table.name, "rows": [list(r) for r in table.rows]}
        ).encode()
        status, record = _post(
            f"{base_url}/classify", body, "application/json"
        )
        assert status == 200 and record["row_labels"]

        # The scrape carries fleet gauges and per-worker series.
        status, metrics, _ = _get(f"{base_url}/metrics")
        assert status == 200
        assert _metric(metrics, "repro_fleet_generation") == 0
        assert _metric(metrics, "repro_fleet_workers_alive") == 2
        assert _metric(metrics, 'repro_fleet_worker_up{worker="0"}') == 1
        assert 'repro_stage_seconds_count{stage="classify"}' in metrics

        # Blue/green over HTTP: flip, then the scrape shows the new
        # generation and the same request still classifies.
        status, outcome = _post(
            f"{base_url}/admin/reload",
            {"path": str(model_dir_v2), "name": "m", "canary": 0},
            "application/json",
        )
        assert status == 200, outcome
        assert outcome["status"] == "flipped"
        assert outcome["generation"] == 1
        status, metrics, _ = _get(f"{base_url}/metrics")
        assert _metric(metrics, "repro_fleet_generation") == 1
        status, record = _post(
            f"{base_url}/classify", body, "application/json"
        )
        assert status == 200 and record["row_labels"]

    def test_reload_rejects_bad_requests(self, base_url, model_dir_v2):
        status, payload = _post(
            f"{base_url}/admin/reload", {}, "application/json"
        )
        assert status == 400 and "path" in payload["error"]
        status, payload = _post(
            f"{base_url}/admin/reload",
            {"path": str(model_dir_v2), "canary": "lots"},
            "application/json",
        )
        assert status == 400
        status, payload = _post(
            f"{base_url}/admin/reload",
            {"path": str(model_dir_v2), "name": "ghost"},
            "application/json",
        )
        assert status == 404
