"""WorkerServer tests: request handling without any processes."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.fleet.protocol import recv_message, send_message, table_to_wire
from repro.fleet.worker import WorkerServer
from repro.tables.model import Table


@pytest.fixture(scope="module")
def server(model_dir) -> WorkerServer:
    return WorkerServer(
        {"m": str(model_dir)}, "m", worker_id=3, generation=1
    )


@pytest.fixture
def table() -> Table:
    return Table(
        [
            ["State", "City", "Enrollment"],
            ["NY", "Ithaca", "19,639"],
            ["NY", "Albany", "17,434"],
        ],
        name="worker-test",
    )


def _classify_request(table: Table, *, model: str = "", rid: int = 1) -> dict:
    return {
        "op": "classify",
        "id": rid,
        "model": model,
        "table": table_to_wire(table),
    }


class TestHandle:
    def test_ping(self, server):
        reply = server.handle({"op": "ping", "id": 9})
        assert reply["ok"] is True
        assert reply["id"] == 9
        assert reply["worker_id"] == 3
        assert reply["generation"] == 1
        assert reply["models"] == ["m"]

    def test_classify_matches_direct(self, server, hashed_pipeline, table):
        reply = server.handle(_classify_request(table))
        assert reply["ok"] is True
        record = reply["record"]
        direct = hashed_pipeline.classify(table)
        assert record["row_labels"] == [str(l) for l in direct.row_labels]
        assert record["col_labels"] == [str(l) for l in direct.col_labels]
        assert reply["seconds"] >= 0
        assert "classify" in reply["stages"]

    def test_stages_drain_per_reply(self, server, table):
        server.handle(_classify_request(table))
        reply = server.handle({"op": "ping", "id": 0})
        assert reply["ok"]
        # A second classify carries only its own stage totals.
        again = server.handle(_classify_request(table))
        assert again["stages"]["classify"][1] == 1

    def test_unknown_model_is_keyerror_reply(self, server, table):
        reply = server.handle(_classify_request(table, model="ghost"))
        assert reply["ok"] is False
        assert reply["kind"] == "KeyError"
        assert "ghost" in reply["error"]

    def test_missing_table_is_valueerror_reply(self, server):
        reply = server.handle({"op": "classify", "id": 1, "model": "m"})
        assert reply["ok"] is False
        assert reply["kind"] == "ValueError"

    def test_unknown_op_is_valueerror_reply(self, server):
        reply = server.handle({"op": "dance", "id": 1})
        assert reply["ok"] is False
        assert reply["kind"] == "ValueError"

    def test_errors_do_not_poison_the_server(self, server, table):
        before = server.errors
        server.handle({"op": "classify", "id": 1, "model": "ghost"})
        after = server.handle(_classify_request(table))
        assert server.errors == before + 1
        assert after["ok"] is True

    def test_shutdown_acknowledged(self, server):
        reply = server.handle({"op": "shutdown", "id": 4})
        assert reply == {"ok": True, "op": "shutdown", "id": 4}


class TestTracedClassify:
    def test_spans_and_clock_shipped(self, model_dir, table):
        server = WorkerServer({"m": str(model_dir)}, "m", worker_id=0)
        request = _classify_request(table)
        request["trace"] = {"trace_id": "cafe1234cafe1234", "span_id": 42}
        reply = server.handle(request)
        assert reply["ok"] is True
        spans = reply["spans"]
        names = {s["name"] for s in spans}
        assert "fleet.worker" in names
        assert "classify" in names
        root = next(s for s in spans if s["name"] == "fleet.worker")
        assert root["trace_id"] == "cafe1234cafe1234"
        assert set(reply["clock"]) == {"wall", "perf"}

    def test_untraced_request_ships_no_spans(self, server, table):
        reply = server.handle(_classify_request(table))
        assert "spans" not in reply


class TestResultCache:
    def test_repeat_classify_is_cached(self, model_dir, table):
        server = WorkerServer(
            {"m": str(model_dir)}, "m", cache_capacity=8
        )
        first = server.handle(_classify_request(table))
        second = server.handle(_classify_request(table))
        assert first["record"]["cached"] is False
        assert second["record"]["cached"] is True
        assert second["record"]["row_labels"] == first["record"]["row_labels"]


class TestServeConnection:
    def test_frames_over_socketpair(self, server, table):
        left, right = socket.socketpair()
        done: list[bool] = []
        thread = threading.Thread(
            target=lambda: done.append(server.serve_connection(right)),
            daemon=True,
        )
        thread.start()
        try:
            send_message(left, {"op": "ping", "id": 1})
            assert recv_message(left)["ok"] is True
            send_message(left, _classify_request(table, rid=2))
            reply = recv_message(left)
            assert reply["ok"] is True and reply["id"] == 2
            send_message(left, {"op": "shutdown", "id": 3})
            assert recv_message(left)["op"] == "shutdown"
        finally:
            thread.join(10)
            left.close()
        # The shutdown op asks the accept loop to exit.
        assert done == [True]

    def test_plain_disconnect_returns_false(self, server):
        left, right = socket.socketpair()
        done: list[bool] = []
        thread = threading.Thread(
            target=lambda: done.append(server.serve_connection(right)),
            daemon=True,
        )
        thread.start()
        left.close()
        thread.join(10)
        assert done == [False]

    def test_bad_frame_drops_connection_not_server(self, server, table):
        left, right = socket.socketpair()
        done: list[bool] = []
        thread = threading.Thread(
            target=lambda: done.append(server.serve_connection(right)),
            daemon=True,
        )
        thread.start()
        left.sendall(b"\x00\x00\x00\x03{x}")  # unparsable payload
        thread.join(10)
        left.close()
        assert done == [False]
        # The server itself keeps answering.
        assert server.handle({"op": "ping", "id": 1})["ok"] is True


def _batch_request(tables, *, model: str = "", rid: int = 7) -> dict:
    return {
        "op": "classify_batch",
        "id": rid,
        "model": model,
        "tables": [table_to_wire(t) for t in tables],
    }


class TestClassifyBatch:
    def test_matches_per_table_classify(self, server, hashed_pipeline):
        tables = [
            Table([["A", "B"], [str(i), str(i + 1)]], name=f"batch-{i}")
            for i in range(4)
        ]
        reply = server.handle(_batch_request(tables))
        assert reply["ok"] is True
        assert len(reply["records"]) == len(tables)
        for table, record in zip(tables, reply["records"]):
            direct = hashed_pipeline.classify(table)
            assert record["row_labels"] == [str(l) for l in direct.row_labels]
            assert record["col_labels"] == [str(l) for l in direct.col_labels]

    def test_bad_wire_item_is_isolated(self, server, table):
        request = _batch_request([table])
        request["tables"].insert(0, {"rows": "not-a-grid"})
        reply = server.handle(request)
        assert reply["ok"] is True
        assert len(reply["records"]) == 2
        assert "error" in reply["records"][0]
        assert reply["records"][1]["row_labels"]

    def test_missing_tables_is_valueerror(self, server):
        reply = server.handle({"op": "classify_batch", "id": 1, "model": "m"})
        assert reply["ok"] is False
        assert reply["kind"] == "ValueError"

    def test_unknown_model_is_keyerror(self, server, table):
        reply = server.handle(_batch_request([table], model="ghost"))
        assert reply["ok"] is False
        assert reply["kind"] == "KeyError"


class TestCacheBounds:
    """Regression: a long-lived worker's result cache is bounded LRU,
    and the ping reply exposes its size so the router can see it."""

    def test_cache_never_exceeds_capacity(self, model_dir):
        server = WorkerServer({"m": str(model_dir)}, "m", cache_capacity=2)
        tables = [
            Table([["H", "V"], [f"cell-{i}", str(i)]], name=f"evict-{i}")
            for i in range(5)
        ]
        for t in tables:
            server.handle(_classify_request(t))
        stats = server.handle({"op": "ping", "id": 1})["cache"]
        assert stats["capacity"] == 2
        assert stats["size"] <= 2
        assert stats["evictions"] >= 3
        assert stats["misses"] >= 5

    def test_batch_path_shares_the_bound(self, model_dir):
        server = WorkerServer({"m": str(model_dir)}, "m", cache_capacity=2)
        tables = [
            Table([["H", "V"], [f"bulk-{i}", str(i)]], name=f"bulk-{i}")
            for i in range(6)
        ]
        server.handle(_batch_request(tables))
        stats = server.handle({"op": "ping", "id": 1})["cache"]
        assert stats["size"] <= 2
        assert stats["evictions"] >= 4

    def test_ping_reports_none_when_disabled(self, server):
        reply = server.handle({"op": "ping", "id": 2})
        assert reply["cache"] is None
