"""Fleet fixtures: directory-store models and a thread-backed launcher.

The router is tested two ways: unit tests inject :class:`ThreadLauncher`
(same wire protocol over real ``AF_UNIX`` sockets, but workers run on
threads — no spawn cost, and tests can reach into ``server`` to gate or
break request handling), while ``test_fleet_e2e.py`` uses the default
:class:`~repro.fleet.router.ProcessLauncher` with real processes.
"""

from __future__ import annotations

import socket
import threading
from pathlib import Path
from typing import Mapping

import pytest

from repro.core.persistence import save_pipeline_dir
from repro.fleet.worker import WorkerServer


@pytest.fixture(scope="session")
def model_dir(hashed_pipeline, tmp_path_factory) -> Path:
    """The session pipeline saved once as a zero-copy directory store."""
    path = tmp_path_factory.mktemp("fleet") / "model_a"
    return Path(save_pipeline_dir(hashed_pipeline, path))


@pytest.fixture(scope="session")
def model_dir_v2(hashed_pipeline, tmp_path_factory) -> Path:
    """A second store of the same pipeline — the reload target."""
    path = tmp_path_factory.mktemp("fleet") / "model_b"
    return Path(save_pipeline_dir(hashed_pipeline, path))


class ThreadWorker:
    """A fleet worker on threads instead of a process.

    Satisfies the router's ``WorkerProcess`` protocol; ``stop()`` dies
    like a killed process would (sockets vanish mid-conversation), which
    is what the death/respawn tests need.
    """

    def __init__(
        self,
        worker_id: int,
        socket_path: str,
        specs: Mapping[str, str],
        default: str,
        *,
        generation: int,
        cache_capacity: int,
    ) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.path = Path(socket_path)
        self.server = WorkerServer(
            dict(specs),
            default,
            worker_id=worker_id,
            generation=generation,
            cache_capacity=cache_capacity,
        )
        self.path.unlink(missing_ok=True)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(self.path))
        self._listener.listen(8)
        self._stopped = threading.Event()
        self._conns: list[socket.socket] = []
        self._thread = threading.Thread(
            target=self._accept_loop,
            name=f"thread-worker-{generation}-{worker_id}",
            daemon=True,
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._conns.append(conn)
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        if self.server.serve_connection(conn):
            # Graceful shutdown op: mirror worker_main's exit.
            self.stop()

    # -- the WorkerProcess protocol ------------------------------------
    @property
    def pid(self) -> int:
        return 0

    def alive(self) -> bool:
        return not self._stopped.is_set()

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        # Unlink before closing connections: the EOFs trigger the
        # router's respawn, and the replacement binds this same path —
        # a late unlink here would delete *its* socket.
        self.path.unlink(missing_ok=True)
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in list(self._conns):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)


class ThreadLauncher:
    """Injectable launcher: every worker is a :class:`ThreadWorker`.

    ``break_generation`` sabotages classify on workers of that
    generation (pings still answer, so spawn readiness passes) — the
    canary-abort tests use it to make a standby fleet look broken.
    """

    def __init__(self) -> None:
        self.launched: list[ThreadWorker] = []
        self.break_generation: int | None = None

    def launch(
        self,
        worker_id: int,
        socket_path: str,
        specs: Mapping[str, str],
        default: str,
        *,
        generation: int,
        cache_capacity: int,
    ) -> ThreadWorker:
        worker = ThreadWorker(
            worker_id,
            socket_path,
            specs,
            default,
            generation=generation,
            cache_capacity=cache_capacity,
        )
        if generation == self.break_generation:
            def broken_classify(request: dict, rid: object) -> dict:
                raise RuntimeError("standby model is broken")

            worker.server._classify = broken_classify  # type: ignore[method-assign]
        self.launched.append(worker)
        return worker


@pytest.fixture
def launcher() -> ThreadLauncher:
    return ThreadLauncher()
