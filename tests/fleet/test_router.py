"""FleetRouter tests on the thread-backed launcher (no processes).

Covers routing, admission control, death/re-route/respawn, and the
blue/green reload state machine; the real-process path lives in
``test_fleet_e2e.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import (
    FleetConfig,
    FleetRouter,
    ReloadInProgress,
    WorkerCrashed,
)
from repro.serve.batching import ServiceOverloaded
from repro.tables.model import Table


@pytest.fixture
def table() -> Table:
    return Table(
        [
            ["State", "City", "Enrollment"],
            ["NY", "Ithaca", "19,639"],
            ["NY", "Albany", "17,434"],
        ],
        name="router-test",
    )


def _make_router(model_dir, launcher, tmp_path, **overrides) -> FleetRouter:
    settings = dict(
        workers=2,
        spawn_timeout=10.0,
        health_interval=0.05,
        canary_timeout=5.0,
        canary_min_requests=4,
    )
    settings.update(overrides)
    return FleetRouter(
        {"m": model_dir},
        config=FleetConfig(**settings),
        socket_dir=tmp_path,
        launcher=launcher,
    )


def _gate_classify(worker) -> threading.Event:
    """Park the worker's classify handling until the event is set."""
    gate = threading.Event()
    original = worker.server.handle

    def gated(request: dict) -> dict:
        if request.get("op") == "classify":
            assert gate.wait(30), "test never released the gate"
        return original(request)

    worker.server.handle = gated  # type: ignore[method-assign]
    return gate


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached in time")


class TestRouting:
    def test_submit_round_trip(
        self, model_dir, launcher, tmp_path, hashed_pipeline, table
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            record = fleet.submit(("m", table, None)).result(timeout=10)
            direct = hashed_pipeline.classify(table)
            assert record["row_labels"] == [
                str(l) for l in direct.row_labels
            ]
            # The empty model name routes to the default.
            default = fleet.submit(("", table, None)).result(timeout=10)
            assert default["row_labels"] == record["row_labels"]

    def test_map_preserves_order(self, model_dir, launcher, tmp_path):
        tables = [
            Table([["h"], [f"row-{i}"]], name=f"t{i}") for i in range(6)
        ]
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            records = fleet.map([("m", t, None) for t in tables])
        assert [r["name"] for r in records] == [t.name for t in tables]

    def test_unknown_model_raises_keyerror(
        self, model_dir, launcher, tmp_path, table
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            with pytest.raises(KeyError, match="ghost"):
                fleet.submit(("ghost", table, None)).result(timeout=10)

    def test_classify_batch_shards_across_workers(
        self, model_dir, launcher, tmp_path, hashed_pipeline
    ):
        tables = [
            Table([["h", "v"], [f"row-{i}", str(i)]], name=f"b{i}")
            for i in range(7)
        ]
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            records = fleet.classify_batch(tables, model="m")
            # Order-preserving, and both workers saw a shard.
            assert [r["name"] for r in records] == [t.name for t in tables]
            # One shard request per worker, not one request per table.
            served = sorted(h.counts()[0] for h in fleet._workers)
            assert served == [1, 1]
        for table, record in zip(tables, records):
            direct = hashed_pipeline.classify(table)
            assert record["row_labels"] == [
                str(l) for l in direct.row_labels
            ]

    def test_classify_batch_empty(self, model_dir, launcher, tmp_path):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            assert fleet.classify_batch([]) == []

    def test_consistent_routing_shards_the_cache(
        self, model_dir, launcher, tmp_path, table
    ):
        with _make_router(
            model_dir, launcher, tmp_path, cache_capacity=32
        ) as fleet:
            records = [
                fleet.submit(("m", table, None)).result(timeout=10)
                for _ in range(8)
            ]
            # Rendezvous hashing pins the table to one worker, so its
            # cache answers every repeat.
            assert records[0]["cached"] is False
            assert all(r["cached"] for r in records[1:])
            served = [h.counts()[0] for h in fleet._workers]
            assert sorted(served) == [0, 8]


class TestAdmissionControl:
    def test_predicted_wait_sheds_with_retry_after(
        self, model_dir, launcher, tmp_path, table
    ):
        with _make_router(
            model_dir, launcher, tmp_path, workers=1, deadline=0.5
        ) as fleet:
            handle = fleet._workers[0]
            with handle._stats_lock:
                handle.ewma = 10.0
                handle.inflight = 1
            with pytest.raises(ServiceOverloaded) as err:
                fleet.submit(("m", table, None))
            assert err.value.retry_after > 0
            assert fleet.status()["shed_total"] == 1
            # Back to normal once the backlog clears.
            with handle._stats_lock:
                handle.ewma = 0.001
                handle.inflight = 0
            record = fleet.submit(("m", table, None)).result(timeout=10)
            assert record["row_labels"]

    def test_full_queue_sheds(self, model_dir, launcher, tmp_path, table):
        with _make_router(
            model_dir, launcher, tmp_path, workers=1, queue_depth=2
        ) as fleet:
            gate = _gate_classify(launcher.launched[0])
            try:
                handle = fleet._workers[0]
                first = fleet.submit(("m", table, None))
                _wait_until(lambda: handle.inflight == 1)
                queued = [fleet.submit(("m", table, None)) for _ in range(2)]
                with pytest.raises(ServiceOverloaded, match="queue is full"):
                    fleet.submit(("m", table, None))
                assert fleet.status()["shed_total"] == 1
            finally:
                gate.set()
            for future in [first, *queued]:
                assert future.result(timeout=10)["row_labels"]


class TestSelfHealing:
    def test_death_fails_only_inflight_and_respawns(
        self, model_dir, launcher, tmp_path, table
    ):
        with _make_router(
            model_dir, launcher, tmp_path, cache_capacity=32, queue_depth=8
        ) as fleet:
            # Warm up and find the worker this table routes to.
            fleet.submit(("m", table, None)).result(timeout=10)
            target = next(
                h for h in fleet._workers if h.counts()[0] == 1
            )
            victim = next(
                w for w in launcher.launched
                if w.worker_id == target.worker_id
            )
            gate = _gate_classify(victim)
            inflight = fleet.submit(("m", table, None))
            _wait_until(lambda: target.inflight == 1)
            queued = [fleet.submit(("m", table, None)) for _ in range(3)]

            victim.stop()  # die like SIGKILL

            # Exactly the in-flight request fails; the queued ones
            # re-route to the survivor and complete.
            with pytest.raises(WorkerCrashed):
                inflight.result(timeout=10)
            for future in queued:
                assert future.result(timeout=10)["row_labels"]
            gate.set()

            # The monitor respawns the dead worker.
            _wait_until(lambda: fleet.status()["alive"] == 2)
            restarts = [w["restarts"] for w in fleet.status()["workers"]]
            assert sorted(restarts) == [0, 1]
            # And the fleet serves at full strength again.
            assert fleet.submit(("m", table, None)).result(timeout=10)

    def test_idle_crash_detected_by_probe(
        self, model_dir, launcher, tmp_path, table
    ):
        # No request in flight: the dispatcher is parked on its queue,
        # so only the monitor's process probe can notice the death.
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            launcher.launched[0].stop()
            _wait_until(
                lambda: any(
                    w["restarts"] == 1 for w in fleet.status()["workers"]
                )
            )
            assert fleet.status()["alive"] == 2

    def test_restart_limit_removes_the_worker(
        self, model_dir, launcher, tmp_path
    ):
        with _make_router(
            model_dir, launcher, tmp_path, max_restarts=0
        ) as fleet:
            launcher.launched[0].stop()
            _wait_until(lambda: fleet.status()["total"] == 1)
            # One of two workers is gone but quorum (1 of 1) holds.
            assert fleet.ready()


class TestBlueGreen:
    def test_flip_without_canary(
        self, model_dir, model_dir_v2, launcher, tmp_path, table
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            fleet.submit(("m", table, None)).result(timeout=10)
            old = list(fleet._workers)
            outcome = fleet.reload(model_dir_v2, name="m", canary=0.0)
            assert outcome["status"] == "flipped"
            assert outcome["generation"] == 1
            status = fleet.status()
            assert status["generation"] == 1
            assert all(
                w["generation"] == 1 for w in status["workers"]
            )
            # The retired generation drained and shut down.
            assert all(h.closing for h in old)
            record = fleet.submit(("m", table, None)).result(timeout=10)
            assert record["row_labels"]

    def test_flip_under_load_drops_nothing(
        self, model_dir, model_dir_v2, launcher, tmp_path, table
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            stop = threading.Event()
            errors: list[Exception] = []
            done = [0]

            def pump() -> None:
                while not stop.is_set():
                    try:
                        fleet.submit(("m", table, None)).result(timeout=10)
                        done[0] += 1
                    except ServiceOverloaded:
                        pass  # admission control, not a drop
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

            threads = [threading.Thread(target=pump) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                outcome = fleet.reload(model_dir_v2, name="m", canary=0.25)
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
            assert outcome["status"] == "flipped"
            assert errors == []
            assert done[0] > 0
            assert fleet.status()["generation"] == 1

    def test_canary_abort_keeps_live_generation(
        self, model_dir, model_dir_v2, launcher, tmp_path, table
    ):
        launcher.break_generation = 1
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            stop = threading.Event()

            def pump() -> None:
                while not stop.is_set():
                    try:
                        fleet.submit(("m", table, None)).result(timeout=10)
                    except Exception:  # noqa: BLE001 - canary errors expected
                        pass

            threads = [threading.Thread(target=pump) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                outcome = fleet.reload(model_dir_v2, name="m", canary=0.5)
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
            assert outcome["status"] == "aborted"
            assert "error rate" in outcome["reason"]
            status = fleet.status()
            assert status["generation"] == 0
            # The broken standby is dead, the live fleet still serves.
            standby = [
                w for w in launcher.launched if w.generation == 1
            ]
            assert standby and all(not w.alive() for w in standby)
            record = fleet.submit(("m", table, None)).result(timeout=10)
            assert record["row_labels"]

    def test_reload_unknown_model_raises_and_releases_lock(
        self, model_dir, model_dir_v2, launcher, tmp_path
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            with pytest.raises(KeyError, match="ghost"):
                fleet.reload(model_dir_v2, name="ghost")
            # The reload lock was released on the failure path.
            outcome = fleet.reload(model_dir_v2, name="m", canary=0.0)
            assert outcome["status"] == "flipped"

    def test_concurrent_reload_rejected(
        self, model_dir, model_dir_v2, launcher, tmp_path
    ):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            assert fleet._reload_lock.acquire(blocking=False)
            try:
                with pytest.raises(ReloadInProgress):
                    fleet.reload(model_dir_v2, name="m")
            finally:
                fleet._reload_lock.release()


class TestIntrospection:
    def test_status_shape(self, model_dir, launcher, tmp_path, table):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            fleet.submit(("m", table, None)).result(timeout=10)
            status = fleet.status()
            assert status["generation"] == 0
            assert status["alive"] == status["total"] == 2
            assert status["quorum"] == 2
            assert status["requests_total"] == 1
            assert status["shed_total"] == 0
            assert status["canary_active"] is False
            assert status["reload_in_progress"] is False
            worker = status["workers"][0]
            assert {"id", "pid", "alive", "ewma_ms", "served"} <= set(worker)
            assert fleet.ready()

    def test_stage_totals_drain(self, model_dir, launcher, tmp_path, table):
        with _make_router(model_dir, launcher, tmp_path) as fleet:
            fleet.submit(("m", table, None)).result(timeout=10)
            totals = fleet.drain_stage_totals()
            assert "classify" in totals
            seconds, count = totals["classify"]
            assert seconds > 0 and count == 1
            assert fleet.drain_stage_totals() == {}

    def test_shutdown_is_idempotent_and_final(
        self, model_dir, launcher, tmp_path, table
    ):
        fleet = _make_router(model_dir, launcher, tmp_path)
        fleet.shutdown()
        fleet.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            fleet.submit(("m", table, None))
