"""Framing tests for the length-prefixed JSON socket protocol."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_message,
    send_message,
    table_from_wire,
    table_to_wire,
)
from repro.tables.model import Table


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        message = {"op": "ping", "id": 7, "nested": {"a": [1, 2, 3]}}
        send_message(left, message)
        assert recv_message(right) == message

    def test_multiple_frames_stay_delimited(self, pair):
        left, right = pair
        for i in range(5):
            send_message(left, {"id": i})
        for i in range(5):
            assert recv_message(right) == {"id": i}

    def test_fragmented_stream_reassembles(self, pair):
        # The reader must cope with arbitrary kernel segmentation, so
        # drip the frame onto the wire one byte at a time.
        left, right = pair
        payload = b'{"op":"ping","id":1}'
        frame = struct.pack(">I", len(payload)) + payload
        for i in range(len(frame)):
            left.sendall(frame[i:i + 1])
        assert recv_message(right) == {"op": "ping", "id": 1}

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_message(right) is None

    def test_eof_mid_frame_raises(self, pair):
        left, right = pair
        payload = b'{"op":"ping"}'
        frame = struct.pack(">I", len(payload)) + payload
        left.sendall(frame[:6])  # header + 2 payload bytes, then gone
        left.close()
        with pytest.raises(ProtocolError, match="closed after"):
            recv_message(right)

    def test_eof_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(ProtocolError, match="closed after"):
            recv_message(right)

    def test_oversized_send_refused(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="refusing to send"):
            send_message(left, {"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_oversized_incoming_header_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            recv_message(right)

    def test_bad_json_payload_raises(self, pair):
        left, right = pair
        payload = b"{not json"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="bad frame payload"):
            recv_message(right)

    def test_non_object_payload_raises(self, pair):
        left, right = pair
        payload = b"[1,2,3]"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="expected an object"):
            recv_message(right)


class TestTableWire:
    def test_round_trip(self):
        table = Table(
            [["a", "b"], ["1", "2"]], name="wire", source="unit.csv"
        )
        rebuilt = table_from_wire(table_to_wire(table))
        assert [list(r) for r in rebuilt.rows] == [["a", "b"], ["1", "2"]]
        assert rebuilt.name == "wire"
        assert rebuilt.source == "unit.csv"

    def test_wire_form_is_json_safe(self):
        import json

        table = Table([["x"]], name="t")
        json.dumps(table_to_wire(table))  # must not raise

    def test_missing_rows_raises(self):
        with pytest.raises(ProtocolError, match="rows"):
            table_from_wire({"name": "broken"})
