"""Tests for noisy HTML markup emission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_from_html
from repro.corpus.markup import CLEAN_MARKUP, MarkupNoise, render_noisy_html
from repro.tables.html import parse_html_table
from repro.tables.labels import LevelKind, TableAnnotation
from repro.tables.model import Table


@pytest.fixture
def table_and_annotation():
    table = Table(
        [
            ["age", "duration", "total"],
            ["onset", "severity", "count"],
            ["acute", "101", "202"],
            ["", "103", "204"],
            ["chronic", "105", "206"],
        ]
    )
    ann = TableAnnotation.from_depths(5, 3, hmd_depth=2, vmd_depth=1)
    return table, ann


class TestNoiseValidation:
    def test_probabilities_checked(self):
        with pytest.raises(ValueError):
            MarkupNoise(drop_thead_prob=1.5)


class TestCleanRendering:
    def test_clean_markup_faithful(self, table_and_annotation):
        table, ann = table_and_annotation
        rng = np.random.default_rng(0)
        html = render_noisy_html(table, ann, rng, CLEAN_MARKUP)
        labels = bootstrap_from_html(html)
        assert labels.metadata_row_indices == (0, 1)
        assert labels.metadata_col_indices == (0,)

    def test_grid_preserved(self, table_and_annotation):
        table, ann = table_and_annotation
        rng = np.random.default_rng(0)
        html = render_noisy_html(table, ann, rng, CLEAN_MARKUP)
        assert parse_html_table(html).to_table().rows == table.rows


class TestDegradation:
    def test_full_demotion_hides_headers(self, table_and_annotation):
        table, ann = table_and_annotation
        noise = MarkupNoise(
            drop_thead_prob=1.0,
            demote_deep_hmd_prob=1.0,
            th_to_td_prob=1.0,
            drop_bold_prob=1.0,
            spurious_th_prob=0.0,
            spurious_bold_prob=0.0,
        )
        html = render_noisy_html(table, ann, np.random.default_rng(0), noise)
        assert "<thead>" not in html
        assert "<th>" not in html
        assert "<b>" not in html

    def test_noise_preserves_grid(self, table_and_annotation):
        """Markup noise corrupts tags, never the cell content."""
        table, ann = table_and_annotation
        noise = MarkupNoise(0.5, 0.5, 0.5, 0.5, 0.2, 0.2)
        for seed in range(5):
            html = render_noisy_html(table, ann, np.random.default_rng(seed), noise)
            assert parse_html_table(html).to_table().rows == table.rows

    def test_spurious_th(self, table_and_annotation):
        table, ann = table_and_annotation
        noise = MarkupNoise(0.0, 0.0, 0.0, 0.0, spurious_th_prob=1.0)
        html = render_noisy_html(table, ann, np.random.default_rng(0), noise)
        labels = bootstrap_from_html(html)
        # every data row got spuriously promoted
        assert all(k is LevelKind.HMD for k in labels.row_kinds)

    def test_deterministic_given_rng(self, table_and_annotation):
        table, ann = table_and_annotation
        noise = MarkupNoise()
        a = render_noisy_html(table, ann, np.random.default_rng(7), noise)
        b = render_noisy_html(table, ann, np.random.default_rng(7), noise)
        assert a == b
