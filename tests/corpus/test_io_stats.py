"""Tests for corpus JSONL persistence and corpus statistics."""

from __future__ import annotations

import pytest

from repro.corpus.io import iter_corpus, load_corpus, save_corpus
from repro.corpus.registry import build_corpus
from repro.corpus.stats import corpus_statistics, describe_corpus


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus("ckg", n_tables=25, seed=17)


class TestIo:
    def test_round_trip(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        written = save_corpus(small_corpus, path)
        assert written == 25
        loaded = load_corpus(path)
        assert len(loaded) == 25
        for original, restored in zip(small_corpus, loaded):
            assert restored.table.rows == original.table.rows
            assert restored.annotation.hmd_depth == original.hmd_depth
            assert restored.html == original.html
            assert restored.meta == original.meta

    def test_gzip_round_trip(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl.gz"
        save_corpus(small_corpus[:5], path)
        assert len(load_corpus(path)) == 5
        # actually compressed (magic bytes)
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_streaming(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(small_corpus[:4], path)
        stream = iter_corpus(path)
        first = next(stream)
        assert first.table.rows == small_corpus[0].table.rows
        assert sum(1 for _ in stream) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "absent.jsonl")

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"nope": 1}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_corpus(path)

    def test_blank_lines_skipped(self, small_corpus, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_corpus(small_corpus[:2], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_corpus(path)) == 2


class TestStats:
    def test_counts(self, small_corpus):
        stats = corpus_statistics(small_corpus)
        assert stats.n_tables == 25
        assert sum(stats.hmd_depth_counts.values()) == 25
        assert sum(stats.vmd_depth_counts.values()) == 25
        assert 0.0 <= stats.markup_coverage <= 1.0
        assert stats.max_rows >= stats.median_rows

    def test_depth_fraction(self, small_corpus):
        stats = corpus_statistics(small_corpus)
        total = sum(
            stats.depth_fraction(hmd=depth) for depth in stats.hmd_depth_counts
        )
        assert total == pytest.approx(1.0)
        with pytest.raises(ValueError):
            stats.depth_fraction()
        with pytest.raises(ValueError):
            stats.depth_fraction(hmd=1, vmd=1)

    def test_empty_corpus(self):
        stats = corpus_statistics([])
        assert stats.n_tables == 0
        assert stats.markup_coverage == 0.0
        assert stats.max_hmd_depth == 0

    def test_describe_renders(self, small_corpus):
        text = describe_corpus(small_corpus, name="ckg-sample")
        assert "ckg-sample" in text
        assert "HMD depth counts" in text
        assert "markup coverage" in text

    def test_markup_free_coverage(self):
        corpus = build_corpus("saus", n_tables=10, seed=3)
        assert corpus_statistics(corpus).markup_coverage == 0.0
