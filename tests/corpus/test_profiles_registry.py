"""Tests for dataset profiles and the registry."""

from __future__ import annotations

import pytest

from repro.corpus.profiles import get_profile, list_profiles
from repro.corpus.registry import (
    build_corpus,
    build_level_stratified,
    build_split,
    dataset_names,
)


class TestProfiles:
    def test_six_datasets(self):
        assert dataset_names() == [
            "cius", "ckg", "cord19", "pubtables", "saus", "wdc",
        ]

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown profile"):
            get_profile("imagenet")

    def test_markup_availability_matches_paper(self):
        """Sec. III-B: SAUS and CIUS have no HTML markup."""
        assert not get_profile("saus").has_markup
        assert not get_profile("cius").has_markup
        assert get_profile("saus").config.html_fraction == 0.0
        assert get_profile("cius").config.html_fraction == 0.0
        for name in ("cord19", "ckg", "wdc", "pubtables"):
            assert get_profile(name).has_markup

    def test_depth_limits_match_paper(self):
        """Table V structure: CKG is the only HMD-5 corpus; VMD max 3."""
        assert get_profile("ckg").max_hmd_level == 5
        assert get_profile("cord19").max_hmd_level == 4
        assert get_profile("wdc").max_hmd_level == 1
        assert all(p.max_vmd_level <= 3 for p in list_profiles())

    def test_depth_probs_respect_limits(self):
        for profile in list_profiles():
            deepest = max(profile.config.hmd_depth_probs)
            assert deepest >= profile.max_hmd_level


class TestRegistry:
    def test_build_corpus_deterministic(self):
        a = build_corpus("cius", n_tables=5, seed=2)
        b = build_corpus("cius", n_tables=5, seed=2)
        assert [x.table.rows for x in a] == [y.table.rows for y in b]

    def test_default_size(self):
        corpus = build_corpus("wdc", n_tables=3)
        assert len(corpus) == 3

    def test_split_disjoint_names(self):
        train, evaluation = build_split("ckg", n_train=5, n_eval=5, seed=1)
        train_names = {item.table.name for item in train}
        eval_names = {item.table.name for item in evaluation}
        assert not train_names & eval_names

    def test_split_disjoint_content(self):
        train, evaluation = build_split("ckg", n_train=8, n_eval=8, seed=1)
        train_rows = {item.table.rows for item in train}
        assert all(item.table.rows not in train_rows for item in evaluation)

    def test_stratified_depths(self):
        items = build_level_stratified(
            "ckg", hmd_depth=4, vmd_depth=2, n_tables=3, seed=0
        )
        assert len(items) == 3
        assert all(item.hmd_depth == 4 for item in items)
        assert all(item.vmd_depth == 2 for item in items)

    def test_markup_free_datasets_have_no_html(self):
        corpus = build_corpus("saus", n_tables=10, seed=0)
        assert all(item.html is None for item in corpus)

    def test_markup_datasets_have_some_html(self):
        corpus = build_corpus("ckg", n_tables=20, seed=0)
        assert any(item.html for item in corpus)
