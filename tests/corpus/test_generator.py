"""Tests for the GST generator: structure, determinism, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.generator import NUMERIC_STYLES, GeneratorConfig, GSTGenerator
from repro.corpus.vocabularies import get_domain
from repro.text import is_numeric_cell


def _config(**overrides) -> GeneratorConfig:
    defaults = dict(domain=get_domain("biomedical"))
    defaults.update(overrides)
    return GeneratorConfig(**defaults)


class TestConfigValidation:
    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            _config(hmd_depth_probs={1: 0.5, 2: 0.2})

    def test_hmd_zero_rejected(self):
        with pytest.raises(ValueError):
            _config(hmd_depth_probs={0: 1.0})

    def test_unknown_styles(self):
        with pytest.raises(ValueError):
            _config(numeric_styles=("roman",))

    def test_tiny_shapes_rejected(self):
        with pytest.raises(ValueError):
            _config(data_rows=(1, 3))


class TestInvariants:
    @pytest.fixture(scope="class")
    def corpus(self):
        return GSTGenerator(_config(), seed=11).generate(40)

    def test_annotation_matches_table(self, corpus):
        for item in corpus:
            assert len(item.annotation.row_labels) == item.table.n_rows
            assert len(item.annotation.col_labels) == item.table.n_cols

    def test_hmd_depth_consistent(self, corpus):
        for item in corpus:
            assert item.annotation.hmd_depth == item.meta["hmd_depth"]
            assert item.annotation.vmd_depth == item.meta["vmd_depth"]

    def test_hmd_rows_contiguous_from_top(self, corpus):
        for item in corpus:
            hmd = item.annotation.hmd_rows()
            assert hmd == tuple(range(len(hmd)))

    def test_vmd_cols_contiguous_from_left(self, corpus):
        for item in corpus:
            vmd = item.annotation.vmd_cols()
            assert vmd == tuple(range(len(vmd)))

    def test_header_rows_never_fully_blank(self, corpus):
        for item in corpus:
            for i in item.annotation.hmd_rows():
                assert any(item.table.row(i)), item.table.name

    def test_vmd_level1_column_has_values(self, corpus):
        for item in corpus:
            if item.vmd_depth >= 1:
                body = item.table.col(0)[item.hmd_depth :]
                assert any(body)

    def test_table_names_unique(self, corpus):
        names = [item.table.name for item in corpus]
        assert len(set(names)) == len(names)

    def test_meta_fields(self, corpus):
        for item in corpus:
            assert item.meta["profile"] == "biomedical"
            assert isinstance(item.meta["has_cmd"], bool)

    def test_cmd_rows_inside_body(self, corpus):
        for item in corpus:
            for row_index in item.annotation.cmd_rows:
                assert row_index >= item.hmd_depth


class TestDeterminism:
    def test_same_seed_same_tables(self):
        a = GSTGenerator(_config(), seed=3).generate(5)
        b = GSTGenerator(_config(), seed=3).generate(5)
        for x, y in zip(a, b):
            assert x.table.rows == y.table.rows
            assert x.html == y.html

    def test_different_seed_differs(self):
        a = GSTGenerator(_config(), seed=3).generate(3)
        b = GSTGenerator(_config(), seed=4).generate(3)
        assert any(x.table.rows != y.table.rows for x, y in zip(a, b))

    def test_prefix_stability(self):
        """Table i does not depend on how many tables are generated."""
        a = GSTGenerator(_config(), seed=3).generate(2)
        b = GSTGenerator(_config(), seed=3).generate(10)
        assert a[0].table.rows == b[0].table.rows
        assert a[1].table.rows == b[1].table.rows


class TestForcedDepths:
    @pytest.mark.parametrize("hmd,vmd", [(1, 0), (3, 1), (5, 3), (2, 2)])
    def test_exact_depths(self, hmd, vmd):
        items = GSTGenerator(_config(), seed=1).generate_with_depths(
            4, hmd_depth=hmd, vmd_depth=vmd
        )
        for item in items:
            assert item.hmd_depth == hmd
            assert item.vmd_depth == vmd
            assert not item.annotation.cmd_rows  # forced tables skip CMD


class TestHtmlEmission:
    def test_html_fraction_zero(self):
        corpus = GSTGenerator(_config(html_fraction=0.0), seed=1).generate(10)
        assert all(item.html is None for item in corpus)

    def test_html_fraction_one(self):
        corpus = GSTGenerator(_config(html_fraction=1.0), seed=1).generate(10)
        assert all(item.html for item in corpus)
        assert all(item.html.startswith("<table>") for item in corpus)


class TestNumericStyles:
    @pytest.mark.parametrize("style", NUMERIC_STYLES)
    def test_styles_tokenize(self, style):
        rng = np.random.default_rng(0)
        for _ in range(5):
            cell = GSTGenerator._numeric_cell(rng, style)
            assert cell
            assert any(ch.isdigit() for ch in cell)

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            GSTGenerator._numeric_cell(np.random.default_rng(0), "weird")

    def test_separator_style_numeric(self):
        rng = np.random.default_rng(0)
        assert is_numeric_cell(GSTGenerator._numeric_cell(rng, "separators"))


class TestAbbreviation:
    def test_long_words_truncate(self):
        assert GSTGenerator._abbreviate("hospitalization rate") == "hosp. rate"

    def test_short_words_kept(self):
        assert GSTGenerator._abbreviate("age total") == "age total"


@settings(max_examples=15, deadline=None)
@given(
    hmd=st.integers(min_value=1, max_value=5),
    vmd=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
)
def test_forced_depth_property(hmd, vmd, seed):
    generator = GSTGenerator(_config(html_fraction=0.5), seed=seed)
    item = generator.generate_with_depths(1, hmd_depth=hmd, vmd_depth=vmd)[0]
    assert item.hmd_depth == hmd
    assert item.vmd_depth == vmd
    # the body must be deep enough to nest every VMD level
    body_rows = item.table.n_rows - hmd
    assert body_rows >= vmd
