"""Tests for domain vocabularies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.vocabularies import DomainVocabulary, domain_names, get_domain


class TestRegistry:
    def test_all_domains_load(self):
        for name in domain_names():
            domain = get_domain(name)
            assert domain.name == name

    def test_expected_domains(self):
        assert set(domain_names()) == {
            "academic", "biomedical", "census", "crime", "web",
        }

    def test_unknown_domain(self):
        with pytest.raises(KeyError, match="unknown domain"):
            get_domain("nope")


class TestPhrases:
    @pytest.mark.parametrize("name", ["biomedical", "crime", "census", "web", "academic"])
    def test_phrase_generators_nonempty(self, name):
        domain = get_domain(name)
        rng = np.random.default_rng(0)
        assert domain.attribute_phrase(rng)
        assert domain.group_phrase(rng)
        assert domain.entity_phrase(rng)
        for level in (1, 2, 3):
            assert domain.category_phrase(rng, level)

    def test_category_level_clamps(self):
        domain = get_domain("biomedical")
        rng = np.random.default_rng(0)
        # deeper than the deepest pool falls back to the last pool
        phrase = domain.category_phrase(rng, 99)
        assert phrase in domain.category_levels[-1]

    def test_attribute_phrase_deterministic(self):
        domain = get_domain("crime")
        a = domain.attribute_phrase(np.random.default_rng(5))
        b = domain.attribute_phrase(np.random.default_rng(5))
        assert a == b


class TestFieldMap:
    def test_attribute_tokens_win_collisions(self):
        """A token in both the entity and attribute pools maps to the
        attribute field (mapping order guarantees it)."""
        domain = get_domain("biomedical")
        mapping = domain.field_map()
        shared = domain.all_attribute_tokens() & domain.all_entity_tokens()
        for token in shared:
            assert mapping[token].endswith(":attribute")

    def test_fields_namespaced_by_domain(self):
        mapping = get_domain("web").field_map()
        assert all(field.startswith("web:") for field in mapping.values())

    def test_tokens_lowercase(self):
        mapping = get_domain("census").field_map()
        assert all(token == token.lower() for token in mapping)


class TestValidation:
    def test_empty_pools_rejected(self):
        with pytest.raises(ValueError):
            DomainVocabulary(
                name="bad",
                attribute_roots=(),
                attribute_qualifiers=("x",),
                group_terms=("y",),
                category_levels=(("z",),),
                entity_terms=("w",),
            )

    def test_missing_category_levels(self):
        with pytest.raises(ValueError):
            DomainVocabulary(
                name="bad",
                attribute_roots=("a",),
                attribute_qualifiers=("x",),
                group_terms=("y",),
                category_levels=(),
                entity_terms=("w",),
            )
