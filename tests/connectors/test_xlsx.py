"""xlsx connector tests (stdlib zip + xml, no openpyxl)."""

from __future__ import annotations

import zipfile

import pytest

from repro.connectors.xlsx import XlsxSource, column_index

_MAIN = 'xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main"'
_RELNS = (
    'xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/'
    'relationships"'
)


def write_xlsx(path, sheets, shared=(), rels=True):
    """Minimal hand-rolled workbook: sheets = [(name, sheet_xml)]."""
    with zipfile.ZipFile(path, "w") as z:
        entries = "".join(
            f'<sheet name="{name}" sheetId="{i}" r:id="rId{i}"/>'
            for i, (name, _) in enumerate(sheets, start=1)
        )
        z.writestr(
            "xl/workbook.xml",
            f"<workbook {_MAIN} {_RELNS}><sheets>{entries}</sheets></workbook>",
        )
        if rels:
            rel_entries = "".join(
                f'<Relationship Id="rId{i}" Type="x" '
                f'Target="worksheets/data{i}.xml"/>'
                for i in range(1, len(sheets) + 1)
            )
            z.writestr(
                "xl/_rels/workbook.xml.rels",
                '<Relationships xmlns="http://schemas.openxmlformats.org/'
                f'package/2006/relationships">{rel_entries}</Relationships>',
            )
        if shared:
            items = "".join(f"<si><t>{s}</t></si>" for s in shared)
            z.writestr(
                "xl/sharedStrings.xml", f"<sst {_MAIN}>{items}</sst>"
            )
        for i, (_, xml) in enumerate(sheets, start=1):
            member = f"xl/worksheets/data{i}.xml" if rels else (
                f"xl/worksheets/sheet{i}.xml"
            )
            z.writestr(member, xml)
    return path


def sheet_xml(rows):
    """rows = [[(ref, t, v), ...], ...] -> worksheet XML."""
    body = ""
    for r, cells in enumerate(rows, start=1):
        cell_xml = ""
        for ref, t, v in cells:
            t_attr = f' t="{t}"' if t else ""
            cell_xml += f'<c r="{ref}"{t_attr}><v>{v}</v></c>'
        body += f'<row r="{r}">{cell_xml}</row>'
    return f"<worksheet {_MAIN}><sheetData>{body}</sheetData></worksheet>"


class TestColumnIndex:
    @pytest.mark.parametrize(
        ("ref", "index"),
        [("A1", 0), ("B7", 1), ("Z3", 25), ("AA1", 26), ("BA7", 52)],
    )
    def test_a1_refs(self, ref, index):
        assert column_index(ref) == index

    def test_no_letters_is_none(self):
        assert column_index("") is None


class TestXlsxSource:
    def test_shared_strings_and_grid(self, tmp_path):
        path = write_xlsx(
            tmp_path / "b.xlsx",
            [("Data", sheet_xml([
                [("A1", "s", 0), ("B1", "s", 1)],
                [("A2", None, 1), ("B2", None, 2)],
            ]))],
            shared=("col1", "col2"),
        )
        items = list(XlsxSource(path).items())
        assert len(items) == 1
        table = items[0].table
        assert table.rows == (("col1", "col2"), ("1", "2"))
        assert items[0].source == f"{path}!Data"

    def test_sparse_cells_land_in_their_columns(self, tmp_path):
        path = write_xlsx(
            tmp_path / "b.xlsx",
            [("S", sheet_xml([
                [("A1", None, 1), ("C1", None, 3)],
                [("B2", None, 2)],
            ]))],
        )
        table = next(XlsxSource(path).items()).table
        assert table.rows == (("1", "", "3"), ("", "2", ""))

    def test_skipped_rows_stay_blank(self, tmp_path):
        xml = (
            f"<worksheet {_MAIN}><sheetData>"
            '<row r="1"><c r="A1"><v>top</v></c></row>'
            '<row r="3"><c r="A3"><v>bottom</v></c></row>'
            "</sheetData></worksheet>"
        )
        path = write_xlsx(tmp_path / "b.xlsx", [("S", xml)])
        table = next(XlsxSource(path).items()).table
        assert table.n_rows == 3
        assert table.rows[1] == ("",)

    def test_multiple_sheets_yield_multiple_items(self, tmp_path):
        path = write_xlsx(
            tmp_path / "b.xlsx",
            [
                ("One", sheet_xml([[("A1", None, 1)]])),
                ("Two", sheet_xml([[("A1", None, 2)]])),
            ],
        )
        items = list(XlsxSource(path).items())
        assert [i.table.name for i in items] == ["One", "Two"]

    def test_missing_rels_falls_back_to_conventional_names(self, tmp_path):
        path = write_xlsx(
            tmp_path / "b.xlsx",
            [("S", sheet_xml([[("A1", None, 7)]]))],
            rels=False,
        )
        table = next(XlsxSource(path).items()).table
        assert table.rows == (("7",),)

    def test_not_a_zip_is_one_error_item(self, tmp_path):
        bad = tmp_path / "b.xlsx"
        bad.write_text("this is not a zip")
        items = list(XlsxSource(bad).items())
        assert len(items) == 1 and items[0].error is not None

    def test_bad_sheet_is_isolated(self, tmp_path):
        path = write_xlsx(
            tmp_path / "b.xlsx",
            [
                ("Good", sheet_xml([[("A1", None, 1)]])),
                ("Bad", "<worksheet><unclosed"),
            ],
        )
        items = list(XlsxSource(path).items())
        assert items[0].table is not None
        assert items[1].error is not None
