"""Source connector tests: spec grammar, lazy parse, error isolation."""

from __future__ import annotations

import io

import pytest

from repro.connectors.sources import (
    FilesSource,
    JsonlSource,
    StdinSource,
    TextSource,
    build_sources,
    expand_path_specs,
)


@pytest.fixture
def csv_dir(tmp_path):
    for i in range(5):
        (tmp_path / f"t{i}.csv").write_text(f"h1,h2\n{i},{i + 1}\n")
    (tmp_path / "notes.txt").write_text("not a table")
    return tmp_path


class TestExpandPathSpecs:
    def test_overlapping_glob_and_dir_dedupes(self, csv_dir):
        # The satellite bug: the same file reached through a glob AND
        # the directory used to be emitted twice.
        paths = expand_path_specs([str(csv_dir / "t*.csv"), str(csv_dir)])
        assert len(paths) == 5

    def test_different_spellings_dedupe(self, csv_dir):
        spelled = csv_dir / ".." / csv_dir.name / "t0.csv"
        paths = expand_path_specs([csv_dir / "t0.csv", spelled])
        assert len(paths) == 1

    def test_order_stable_first_occurrence_wins(self, csv_dir):
        one = csv_dir / "t3.csv"
        paths = expand_path_specs([one, csv_dir])
        assert paths[0] == one
        assert len(paths) == 5

    def test_missing_glob_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            expand_path_specs([str(tmp_path / "absent-*.csv")])


class TestFilesSource:
    def test_items_in_path_order(self, csv_dir):
        source = FilesSource(sorted(csv_dir.glob("t*.csv")))
        names = [item.table.name for item in source.items()]
        assert names == [f"t{i}" for i in range(5)]

    def test_split_preserves_order(self, csv_dir):
        source = FilesSource(sorted(csv_dir.glob("t*.csv")))
        subs = source.split(2)
        assert len(subs) == 2
        names = [
            item.table.name for sub in subs for item in sub.items()
        ]
        assert names == [f"t{i}" for i in range(5)]

    def test_bad_file_is_one_error_item(self, tmp_path):
        (tmp_path / "good.csv").write_text("a,b\n1,2\n")
        (tmp_path / "bad.json").write_text("{not json")
        source = FilesSource(
            [tmp_path / "good.csv", tmp_path / "bad.json"]
        )
        items = list(source.items())
        assert items[0].table is not None
        assert items[1].error is not None

    def test_row_streams_only_for_all_csv(self, csv_dir, tmp_path):
        all_csv = FilesSource(sorted(csv_dir.glob("t*.csv")))
        assert all_csv.row_streams() is not None
        (tmp_path / "a.md").write_text("| a |\n|---|\n| 1 |\n")
        mixed = FilesSource([csv_dir / "t0.csv", tmp_path / "a.md"])
        assert mixed.row_streams() is None


class TestJsonlSource:
    def test_per_line_isolation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '[["a","b"],["1","2"]]\n'
            "garbage\n"
            '{"rows": [["x"],["9"]]}\n'
        )
        items = list(JsonlSource(path).items())
        assert [item.error is None for item in items] == [True, False, True]
        assert items[0].source.endswith("#L1")
        assert items[1].source.endswith("#L2")

    def test_missing_file_is_one_error(self, tmp_path):
        items = list(JsonlSource(tmp_path / "absent.jsonl").items())
        assert len(items) == 1 and items[0].error is not None


class TestTextAndStdin:
    def test_text_source_sniffs_csv(self):
        items = list(TextSource("a,b\n1,2\n", name="stdin").items())
        assert items[0].table.rows == (("a", "b"), ("1", "2"))

    def test_text_source_sniffs_jsonl(self):
        items = list(TextSource('[["a"]]\n[["b"]]\n').items())
        assert len(items) == 2

    def test_text_source_csv_row_stream(self):
        streams = TextSource("a,b\n1,2\n", name="stdin").row_streams()
        assert streams is not None
        rows = list(next(iter(streams)).rows())
        assert rows == [["a", "b"], ["1", "2"]]

    def test_stdin_source_reads_lazily(self):
        source = StdinSource(io.StringIO("x,y\n3,4\n"))
        items = list(source.items())
        assert items[0].table.rows == (("x", "y"), ("3", "4"))
        assert items[0].source == "stdin"


class TestBuildSources:
    def test_grammar(self, csv_dir, tmp_path):
        (tmp_path / "t.jsonl").write_text('[["a"]]\n')
        sources = build_sources(
            [
                str(csv_dir),
                f"jsonl:{tmp_path / 't.jsonl'}",
                "-",
            ],
            stdin_factory=lambda: TextSource("a\n1\n", name="stdin"),
        )
        kinds = [type(s).__name__ for s in sources]
        assert kinds == ["FilesSource", "JsonlSource", "TextSource"]

    def test_path_runs_coalesce(self, csv_dir):
        sources = build_sources([str(csv_dir / "t0.csv"), str(csv_dir / "t1.csv")])
        assert len(sources) == 1
        assert len(sources[0].paths) == 2

    def test_sql_spec(self, tmp_path):
        import sqlite3

        db = tmp_path / "d.db"
        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE t (a TEXT)")
        conn.commit()
        conn.close()
        sources = build_sources([f"sql:{db}#t"])
        assert type(sources[0]).__name__ == "DbSource"
