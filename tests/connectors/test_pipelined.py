"""Pipelined executor tests: parity with sequential, ordering, errors."""

from __future__ import annotations

import json

import pytest

from repro.connectors.pipelined import run_streaming, run_streaming_pool
from repro.connectors.sinks import JsonlSink
from repro.connectors.sources import build_sources
from repro.connectors.window import WindowConfig
from repro.serve.bulk import classify_paths
from repro.serve.cache import LRUCache
from repro.serve.metrics import ServiceMetrics


@pytest.fixture
def corpus_dir(tmp_path, ckg_eval):
    for i, annotated in enumerate(ckg_eval[:8]):
        rows = "\n".join(
            ",".join(cell.replace(",", ";") for cell in row)
            for row in annotated.table.rows
        )
        (tmp_path / f"table-{i:02d}.csv").write_text(rows + "\n")
    return tmp_path


def _normalize(record: dict) -> dict:
    skip = ("seconds", "cached", "model")
    return {k: v for k, v in record.items() if k not in skip}


class TestRunStreaming:
    def test_matches_sequential_path(self, hashed_pipeline, corpus_dir):
        paths = sorted(corpus_dir.glob("*.csv"))
        sequential = classify_paths(hashed_pipeline, paths)
        streamed = run_streaming(
            hashed_pipeline,
            build_sources([str(p) for p in paths]),
            parse_workers=2,
            chunk_size=3,
        )
        assert [_normalize(r) for r in streamed] == [
            _normalize(r) for r in sequential
        ]

    def test_ordered_output_follows_input_order(
        self, hashed_pipeline, corpus_dir
    ):
        records = run_streaming(
            hashed_pipeline,
            build_sources([str(corpus_dir)]),
            parse_workers=3,
            chunk_size=1,
        )
        names = [r["name"] for r in records]
        assert names == sorted(names)

    def test_error_isolation(self, hashed_pipeline, tmp_path):
        (tmp_path / "a.csv").write_text("x,y\n1,2\n")
        (tmp_path / "b.json").write_text("{broken")
        (tmp_path / "c.csv").write_text("p,q\n3,4\n")
        records = run_streaming(
            hashed_pipeline, build_sources([str(tmp_path)])
        )
        assert len(records) == 3
        errors = [r for r in records if "error" in r]
        assert len(errors) == 1
        assert errors[0]["source"].endswith("b.json")

    def test_metrics_counters(self, hashed_pipeline, corpus_dir):
        metrics = ServiceMetrics()
        run_streaming(
            hashed_pipeline,
            build_sources([str(corpus_dir)]),
            chunk_size=2,
            metrics=metrics,
        )
        assert metrics.counter("ingest_tables_total") == 8
        assert metrics.counter("ingest_chunks_total") >= 4
        assert metrics.counter("ingest_errors_total") == 0

    def test_unordered_sink_receives_every_record(
        self, hashed_pipeline, corpus_dir, tmp_path
    ):
        out = tmp_path / "out.jsonl"
        with JsonlSink(out) as sink:
            run_streaming(
                hashed_pipeline,
                build_sources([str(corpus_dir)]),
                parse_workers=2,
                ordered=False,
                sink=sink,
            )
        lines = out.read_text().splitlines()
        assert len(lines) == 8
        names = {json.loads(line)["name"] for line in lines}
        assert names == {f"table-{i:02d}" for i in range(8)}

    def test_windowed_streaming(self, hashed_pipeline, corpus_dir):
        records = run_streaming(
            hashed_pipeline,
            build_sources([str(corpus_dir)]),
            window=WindowConfig.from_budget(256),
        )
        assert len(records) == 8
        assert all(r["windowed"] for r in records)
        # Every eval table fits the 256-row budget: windows are exact.
        assert all(r["window_exact"] for r in records)

    def test_cache_is_shared_across_chunks(self, hashed_pipeline, tmp_path):
        (tmp_path / "a.csv").write_text("x,y\n1,2\n")
        (tmp_path / "b.csv").write_text("x,y\n1,2\n")
        cache = LRUCache(capacity=16)
        records = run_streaming(
            hashed_pipeline,
            build_sources([str(tmp_path)]),
            cache=cache,
            chunk_size=1,
            parse_workers=1,
        )
        assert len(records) == 2
        assert any(r.get("cached") for r in records)


class TestRunStreamingPool:
    def test_matches_thread_path(self, corpus_dir, hashed_pipeline, tmp_path):
        from repro.core.persistence import save_pipeline_dir
        from repro.parallel.pool import ShardedPool

        model = save_pipeline_dir(hashed_pipeline, tmp_path / "model")
        sources = [str(corpus_dir)]
        with ShardedPool({"m": model}, procs=2, default="m") as pool:
            pooled = run_streaming_pool(
                pool, build_sources(sources), chunk_size=3
            )
        threaded = run_streaming(hashed_pipeline, build_sources(sources))
        assert [_normalize(r) for r in pooled] == [
            _normalize(r) for r in threaded
        ]
