"""Content-sniffing tests: extensionless dispatch (satellite fix)."""

from __future__ import annotations

import pytest

from repro.connectors.sniff import sniff_format, suffix_for


class TestSniffFormat:
    def test_csv(self):
        assert sniff_format("a,b,c\n1,2,3\n") == "csv"

    def test_empty_defaults_to_csv(self):
        assert sniff_format("") == "csv"
        assert sniff_format("   \n  ") == "csv"

    def test_json_object(self):
        assert sniff_format('{"rows": [["a"], ["1"]]}') == "json"

    def test_json_pretty_printed(self):
        text = '{\n  "rows": [\n    ["a"],\n    ["1"]\n  ]\n}'
        assert sniff_format(text) == "json"

    def test_jsonl(self):
        assert sniff_format('{"rows": [["a"]]}\n{"rows": [["b"]]}\n') == "jsonl"

    def test_jsonl_of_arrays(self):
        assert sniff_format('["a","b"]\n["1","2"]\n') == "jsonl"

    def test_html(self):
        assert sniff_format("<table><tr><td>x</td></tr></table>") == "html"

    def test_html_document(self):
        assert sniff_format("<!DOCTYPE html>\n<html>...</html>") == "html"

    def test_markdown_pipe_table(self):
        assert sniff_format("| a | b |\n|---|---|\n| 1 | 2 |\n") == "markdown"

    def test_markdown_needs_separator_row(self):
        # Pipes alone are legal CSV content; only the separator row
        # under a pipe row marks a markdown table.
        assert sniff_format("a|b\n1|2\n") == "csv"

    def test_brace_start_but_not_json_is_csv(self):
        assert sniff_format("{not json at all\nx,y\n") == "csv"


class TestSuffixFor:
    @pytest.mark.parametrize(
        ("format_name", "suffix"),
        [
            ("json", ".json"),
            ("jsonl", ".jsonl"),
            ("html", ".html"),
            ("markdown", ".md"),
            ("csv", ".csv"),
        ],
    )
    def test_mapping(self, format_name, suffix):
        assert suffix_for(format_name) == suffix
