"""Windowed classification tests: reservoir, runs, memory contract."""

from __future__ import annotations

import json
import tracemalloc
from collections.abc import Iterator, Sequence

import pytest

from repro.connectors.window import (
    ListRowStream,
    RowStream,
    WindowConfig,
    build_window,
    classify_windowed,
    label_runs,
)


def grid(n_rows: int, n_cols: int = 4) -> list[list[str]]:
    rows = [[f"col{c}" for c in range(n_cols)]]
    rows += [[f"r{r}c{c}" for c in range(n_cols)] for r in range(n_rows - 1)]
    return rows


class GeneratedRowStream(RowStream):
    """Rows produced on demand — nothing is ever materialized."""

    def __init__(self, n_rows: int, n_cols: int) -> None:
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.name = "generated"
        self.source = "generated"

    def rows(self) -> Iterator[Sequence[str]]:
        yield [f"col{c}" for c in range(self.n_cols)]
        for r in range(self.n_rows - 1):
            yield [f"value-{r}-{c}" for c in range(self.n_cols)]


class TestWindowConfig:
    def test_from_budget(self):
        config = WindowConfig.from_budget(16, 8)
        assert (config.head_rows, config.tail_rows, config.sample_rows) == (
            16,
            16,
            16,
        )
        assert config.max_cols == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"head_rows": 0},
            {"tail_rows": -1},
            {"sample_rows": -1},
            {"max_cols": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WindowConfig(**kwargs)


class TestBuildWindow:
    def test_small_table_is_exact(self):
        plan = build_window(
            ListRowStream(grid(10), name="t"), WindowConfig.from_budget(8)
        )
        assert plan.exact
        assert plan.total_rows == 10
        assert plan.row_indices == tuple(range(10))
        assert plan.window.n_rows == 10

    def test_window_composition_head_body_tail(self):
        plan = build_window(
            ListRowStream(grid(1000), name="t"),
            WindowConfig(head_rows=8, tail_rows=8, sample_rows=8),
        )
        assert not plan.exact
        assert plan.total_rows == 1000
        assert len(plan.row_indices) == 24
        # Head is the first 8, tail is the last 8, body sits between.
        assert plan.row_indices[:8] == tuple(range(8))
        assert plan.row_indices[-8:] == tuple(range(992, 1000))
        body = plan.row_indices[8:-8]
        assert all(8 <= i < 992 for i in body)
        # Indices are strictly increasing: the window preserves order.
        assert list(plan.row_indices) == sorted(plan.row_indices)

    def test_reservoir_is_seed_deterministic(self):
        rows = grid(5000)
        plans = [
            build_window(
                ListRowStream(rows, name="t"),
                WindowConfig(head_rows=4, tail_rows=4, sample_rows=4, seed=7),
            )
            for _ in range(2)
        ]
        assert plans[0].row_indices == plans[1].row_indices
        other = build_window(
            ListRowStream(rows, name="t"),
            WindowConfig(head_rows=4, tail_rows=4, sample_rows=4, seed=8),
        )
        assert other.row_indices != plans[0].row_indices

    def test_max_cols_truncates_and_clears_exact(self):
        plan = build_window(
            ListRowStream(grid(6, n_cols=10), name="t"),
            WindowConfig(head_rows=8, tail_rows=8, sample_rows=8, max_cols=3),
        )
        assert plan.truncated_cols
        assert not plan.exact
        assert plan.total_cols == 10
        assert plan.window.n_cols == 3

    def test_window_grid_matches_selected_rows(self):
        rows = grid(200)
        plan = build_window(
            ListRowStream(rows, name="t"),
            WindowConfig(head_rows=4, tail_rows=4, sample_rows=4, seed=1),
        )
        for pos, original_index in enumerate(plan.row_indices):
            assert list(plan.window.rows[pos]) == rows[original_index]


class TestLabelRuns:
    def test_contiguous_prefix(self):
        runs = label_runs([0, 1, 2], ["HMD", "HMD", "DATA"], 10)
        assert runs == [[0, 2, "HMD"], [2, 10, "DATA"]]

    def test_gaps_fill_with_data(self):
        runs = label_runs([0, 7, 9], ["HMD", "DATA", "VMD"], 10)
        assert runs == [[0, 1, "HMD"], [1, 9, "DATA"], [9, 10, "VMD"]]

    def test_runs_tile_the_axis(self):
        runs = label_runs([0, 1, 500, 998, 999], ["A", "A", "B", "A", "C"], 1000)
        assert runs[0][0] == 0
        assert runs[-1][1] == 1000
        for left, right in zip(runs, runs[1:]):
            assert left[1] == right[0]

    def test_empty_window(self):
        assert label_runs([], [], 5) == [[0, 5, "DATA"]]


class TestWindowedEquivalence:
    def test_exact_window_labels_byte_identical(self, hashed_pipeline, ckg_eval):
        """Satellite contract: a table that fits one window classifies
        byte-identically to the in-memory path."""
        for annotated in ckg_eval[:6]:
            table = annotated.table
            stream = ListRowStream(
                [list(row) for row in table.rows], name=table.name
            )
            result = classify_windowed(
                hashed_pipeline, stream, WindowConfig.from_budget(256)
            )
            full = hashed_pipeline.classify(table)
            assert result.record["window_exact"]
            windowed_labels = json.dumps(
                [
                    [str(x) for x in result.annotation.row_labels],
                    [str(x) for x in result.annotation.col_labels],
                ]
            ).encode()
            memory_labels = json.dumps(
                [
                    [str(x) for x in full.row_labels],
                    [str(x) for x in full.col_labels],
                ]
            ).encode()
            assert windowed_labels == memory_labels

    def test_windowed_record_shape(self, hashed_pipeline):
        stream = GeneratedRowStream(2000, 6)
        result = classify_windowed(
            hashed_pipeline,
            stream,
            WindowConfig.from_budget(16),
            model="m",
        )
        record = result.record
        assert record["windowed"] is True
        assert record["window_exact"] is False
        assert record["n_rows"] == 2000
        assert record["n_cols"] == 6
        assert record["window_rows"] == 48
        assert record["model"] == "m"
        # Row runs tile [0, 2000) despite the table never being held.
        row_runs = record["row_label_runs"]
        assert row_runs[0][0] == 0 and row_runs[-1][1] == 2000
        assert sum(stop - start for start, stop, _ in row_runs) == 2000
        assert len(record["window_row_labels"]) == 48


class TestMemoryContract:
    """Satellite contract: table >=10x the window budget, pinned ceiling."""

    N_ROWS = 50_000
    N_COLS = 8
    # Classifying a 192-row window peaks ~2 MB; materializing the full
    # 50k x 8 grid costs >25 MB.  The ceiling pins the bounded-memory
    # claim with >3x headroom on both sides.
    CEILING_BYTES = 8 * 1024 * 1024

    def test_windowed_classify_stays_under_ceiling(self, hashed_pipeline):
        stream = GeneratedRowStream(self.N_ROWS, self.N_COLS)
        config = WindowConfig.from_budget(64)
        assert self.N_ROWS >= 10 * (3 * 64)
        # Warm lazy imports/caches outside the measured region.
        classify_windowed(
            hashed_pipeline, GeneratedRowStream(1000, self.N_COLS), config
        )
        tracemalloc.start()
        try:
            result = classify_windowed(hashed_pipeline, stream, config)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.record["n_rows"] == self.N_ROWS
        assert result.record["window_rows"] == 192
        assert peak < self.CEILING_BYTES, (
            f"windowed classify peaked at {peak / 1e6:.1f} MB"
        )

    def test_full_materialization_would_blow_the_ceiling(self):
        """Sanity check that the ceiling actually discriminates."""
        tracemalloc.start()
        try:
            rows = [
                [f"value-{r}-{c}" for c in range(self.N_COLS)]
                for r in range(self.N_ROWS)
            ]
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert len(rows) == self.N_ROWS
        assert peak > 2 * self.CEILING_BYTES
