"""Chunk protocol tests: items, ordering keys, the backpressured queue."""

from __future__ import annotations

import threading
import time

import pytest

from repro.connectors.chunks import ChunkQueue, SourceItem, TableChunk
from repro.serve.metrics import ServiceMetrics
from repro.tables.model import Table


def _item(n: int = 0) -> SourceItem:
    return SourceItem(source=f"s{n}", table=Table([["a"], ["1"]]))


class TestSourceItem:
    def test_table_xor_error(self):
        with pytest.raises(ValueError):
            SourceItem(source="s")
        with pytest.raises(ValueError):
            SourceItem(source="s", table=Table([["a"]]), error="boom")

    def test_error_item(self):
        item = SourceItem(source="s", error="bad parse")
        assert item.table is None


class TestTableChunk:
    def test_tables_excludes_errors(self):
        chunk = TableChunk(
            rank=0, index=0,
            items=(_item(), SourceItem(source="e", error="x"), _item(1)),
        )
        assert len(chunk) == 3
        assert len(chunk.tables) == 2


class TestChunkQueue:
    def test_iteration_ends_when_all_producers_done(self):
        q = ChunkQueue(capacity=4)
        q.add_producer()
        q.add_producer()
        q.put(TableChunk(rank=0, index=0, items=(_item(),)))
        q.producer_done()
        q.put(TableChunk(rank=1, index=0, items=(_item(),)))
        q.producer_done()
        assert len(list(q)) == 2

    def test_put_blocks_at_capacity_and_counts_backpressure(self):
        metrics = ServiceMetrics()
        q = ChunkQueue(capacity=1, metrics=metrics)
        q.add_producer()
        q.put(TableChunk(rank=0, index=0, items=(_item(),)))
        blocked_done = threading.Event()

        def producer():
            q.put(TableChunk(rank=0, index=1, items=(_item(),)))
            q.producer_done()
            blocked_done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        # The second put is blocked: the queue held it back.
        assert not blocked_done.is_set()
        assert metrics.counter("ingest_backpressure_waits_total") >= 1
        seen = list(q)
        thread.join(timeout=5)
        assert blocked_done.is_set()
        assert [c.index for c in seen] == [0, 1]

    def test_queue_depth_gauge(self):
        metrics = ServiceMetrics()
        q = ChunkQueue(capacity=4, metrics=metrics)
        q.add_producer()
        q.put(TableChunk(rank=0, index=0, items=(_item(),)))
        q.put(TableChunk(rank=0, index=1, items=(_item(),)))
        assert metrics.gauge("ingest_queue_depth") == 2.0
        assert "repro_ingest_queue_depth 2" in metrics.render()
        q.producer_done()
        list(q)
        assert metrics.gauge("ingest_queue_depth") <= 1.0

    def test_producer_done_without_add_raises(self):
        q = ChunkQueue()
        with pytest.raises(RuntimeError):
            q.producer_done()

    def test_closed_queue_rejects_new_producers(self):
        q = ChunkQueue()
        q.add_producer()
        q.producer_done()
        with pytest.raises(RuntimeError):
            q.add_producer()
