"""DB-API connector tests: spec grammar, batch cursors, row streams."""

from __future__ import annotations

import sqlite3

import pytest

from repro.connectors.dbapi import DbRowStream, DbSource


@pytest.fixture
def db(tmp_path):
    path = tmp_path / "corpus.db"
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE measurements (name TEXT, value INT)")
    conn.executemany(
        "INSERT INTO measurements VALUES (?, ?)",
        [(f"m{i}", i) for i in range(10)],
    )
    conn.execute("CREATE TABLE empty_notes (body TEXT)")
    conn.commit()
    conn.close()
    return path


class TestFromSpec:
    def test_table_fragment(self, db):
        source = DbSource.from_spec(f"sql:{db}#measurements")
        items = list(source.items())
        assert len(items) == 1
        table = items[0].table
        assert table.rows[0] == ("name", "value")
        assert table.n_rows == 11
        assert table.name == "measurements"

    def test_query_fragment(self, db):
        source = DbSource.from_spec(
            f"sql:{db}#SELECT name FROM measurements WHERE value < 3"
        )
        table = next(source.items()).table
        assert table.rows == (("name",), ("m0",), ("m1",), ("m2",))

    def test_no_fragment_discovers_all_tables(self, db):
        source = DbSource.from_spec(f"sql:{db}")
        names = [item.table.name for item in source.items()]
        assert names == ["empty_notes", "measurements"]

    def test_missing_db_is_one_error_item(self, tmp_path):
        source = DbSource.from_spec(f"sql:{tmp_path / 'absent.db'}#t")
        items = list(source.items())
        assert len(items) == 1 and items[0].error is not None
        # And the typo'd path was NOT created as an empty database.
        assert not (tmp_path / "absent.db").exists()

    def test_empty_path_raises(self):
        with pytest.raises(ValueError):
            DbSource.from_spec("sql:#t")

    def test_null_cells_become_blank(self, db):
        conn = sqlite3.connect(db)
        conn.execute("INSERT INTO measurements VALUES (NULL, NULL)")
        conn.commit()
        conn.close()
        table = next(
            DbSource.from_spec(f"sql:{db}#measurements").items()
        ).table
        assert table.rows[-1] == ("", "")


class TestDbRowStream:
    def test_fetchmany_batches(self, db):
        stream = DbRowStream(
            lambda: sqlite3.connect(db),
            "SELECT * FROM measurements",
            name="measurements",
            source="t",
            batch_rows=3,
        )
        rows = list(stream.rows())
        assert rows[0] == ["name", "value"]
        assert len(rows) == 11

    def test_row_streams_surface(self, db):
        source = DbSource.from_spec(f"sql:{db}#measurements")
        streams = source.row_streams()
        assert streams is not None
        stream = next(iter(streams))
        assert stream.name == "measurements"
        assert len(list(stream.rows())) == 11
