"""Sink tests: JSONL, sqlite, and the spec dispatcher."""

from __future__ import annotations

import io
import json
import sqlite3

import pytest

from repro.connectors.sinks import (
    JsonlSink,
    SqliteSink,
    StdoutSink,
    build_sink,
)


RECORD = {
    "name": "t1",
    "source": "t1.csv",
    "n_rows": 4,
    "n_cols": 2,
    "hmd_depth": 1,
    "vmd_depth": 0,
    "row_labels": ["HMD", "DATA", "DATA", "DATA"],
}


class TestJsonlSink:
    def test_writes_one_line_per_record(self, tmp_path):
        out = tmp_path / "o.jsonl"
        with JsonlSink(out) as sink:
            sink.write(RECORD)
            sink.write({"source": "bad", "error": "boom"})
            assert sink.count == 2
        lines = out.read_text().splitlines()
        assert json.loads(lines[0]) == RECORD
        assert json.loads(lines[1])["error"] == "boom"

    def test_wraps_existing_stream_without_closing_it(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.write(RECORD)
        sink.close()
        assert json.loads(buf.getvalue()) == RECORD
        assert not buf.closed


class TestSqliteSink:
    def test_schema_and_payload(self, tmp_path):
        db = tmp_path / "o.db"
        with SqliteSink(db) as sink:
            sink.write(RECORD)
            sink.write({"source": "bad.csv", "error": "boom"})
        conn = sqlite3.connect(db)
        try:
            rows = conn.execute(
                "SELECT name, source, n_rows, error, payload "
                "FROM results ORDER BY rowid"
            ).fetchall()
        finally:
            conn.close()
        assert rows[0][:3] == ("t1", "t1.csv", 4)
        assert rows[0][3] is None
        # Non-scalar fields round-trip through the JSON payload column.
        assert json.loads(rows[0][4])["row_labels"] == RECORD["row_labels"]
        assert rows[1][3] == "boom"

    def test_custom_table_name(self, tmp_path):
        db = tmp_path / "o.db"
        with SqliteSink(db, table="labels") as sink:
            sink.write(RECORD)
        conn = sqlite3.connect(db)
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM labels").fetchone()
        finally:
            conn.close()
        assert count == 1

    def test_from_spec(self, tmp_path):
        sink = SqliteSink.from_spec(f"sql:{tmp_path / 'o.db'}#runs")
        with sink:
            sink.write(RECORD)
        conn = sqlite3.connect(tmp_path / "o.db")
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        finally:
            conn.close()
        assert count == 1


class TestBuildSink:
    def test_dash_is_stdout(self):
        assert isinstance(build_sink("-"), StdoutSink)

    def test_sql_spec(self, tmp_path):
        sink = build_sink(f"sql:{tmp_path / 'o.db'}#t")
        assert isinstance(sink, SqliteSink)
        sink.close()

    def test_default_is_jsonl(self, tmp_path):
        sink = build_sink(str(tmp_path / "o.jsonl"))
        assert isinstance(sink, JsonlSink)
        sink.close()


@pytest.mark.parametrize("spec", ["sql:", "sql:#t"])
def test_bad_sql_specs_raise(spec):
    with pytest.raises(ValueError):
        SqliteSink.from_spec(spec)
