"""Streaming connectors test package."""
