"""Unit and property tests for repro.text (tokenization)."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, strategies as st

from repro.text import (
    TokenKind,
    classify_token,
    is_numeric_cell,
    normalize_cell,
    numeric_fraction,
    tokenize,
    tokenize_cells,
)


class TestNormalizeCell:
    def test_none_is_empty(self):
        assert normalize_cell(None) == ""

    def test_whitespace_collapses(self):
        assert normalize_cell("  a \t b\n c ") == "a b c"

    def test_non_string_coerces(self):
        assert normalize_cell(14373) == "14373"
        assert normalize_cell(3.5) == "3.5"

    def test_empty_string(self):
        assert normalize_cell("") == ""


class TestTokenize:
    def test_plain_words_lowercase(self):
        tokens = tokenize("Student Enrollment")
        assert [t.text for t in tokens] == ["student", "enrollment"]
        assert all(t.kind is TokenKind.WORD for t in tokens)

    def test_lowercase_off(self):
        tokens = tokenize("Student", lowercase=False)
        assert tokens[0].text == "Student"

    def test_thousands_separator_number(self):
        tokens = tokenize("14,373")
        assert len(tokens) == 1
        assert tokens[0].text == "14373"
        assert tokens[0].kind is TokenKind.NUMBER

    def test_percent(self):
        tokens = tokenize("96.7%")
        assert [t.kind for t in tokens] == [TokenKind.PERCENT]
        assert tokens[0].text == "96.7%"

    def test_mixed_cell(self):
        tokens = tokenize("86 (50.3%)")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.NUMBER, TokenKind.PERCENT]

    def test_range_header(self):
        tokens = tokenize("12 to 15 years")
        assert [t.text for t in tokens] == ["12", "to", "15", "years"]

    def test_comparison_symbol(self):
        tokens = tokenize("<2 h")
        assert tokens[0].kind is TokenKind.SYMBOL
        assert tokens[1].kind is TokenKind.NUMBER

    def test_hyphenated_word_kept(self):
        tokens = tokenize("follow-up")
        assert [t.text for t in tokens] == ["follow-up"]

    def test_empty_cell(self):
        assert tokenize("") == []
        assert tokenize(None) == []

    def test_negative_decimal(self):
        tokens = tokenize("-3.5")
        assert tokens[0].text == "-3.5"
        assert tokens[0].kind is TokenKind.NUMBER

    def test_tokenize_cells_flattens(self):
        tokens = tokenize_cells(["a b", "", "c"])
        assert [t.text for t in tokens] == ["a", "b", "c"]


class TestClassifyToken:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("hello", TokenKind.WORD),
            ("123", TokenKind.NUMBER),
            ("1.5", TokenKind.NUMBER),
            ("96.7%", TokenKind.PERCENT),
            ("<", TokenKind.SYMBOL),
        ],
    )
    def test_known_kinds(self, text, kind):
        assert classify_token(text) is kind

    def test_digit_fallback(self):
        assert classify_token("a1b2") is TokenKind.NUMBER


class TestNumericDetection:
    def test_numeric_cell(self):
        assert is_numeric_cell("14,373")
        assert is_numeric_cell("96.7%")

    def test_textual_cell(self):
        assert not is_numeric_cell("Student enrollment")

    def test_blank_is_not_numeric(self):
        assert not is_numeric_cell("")
        assert not is_numeric_cell(None)

    def test_threshold(self):
        # "12 to 15 years": 2 of 4 tokens numeric -> 0.5.
        assert is_numeric_cell("12 to 15 years", threshold=0.5)
        assert not is_numeric_cell("12 to 15 years", threshold=0.6)

    def test_numeric_fraction_ignores_blanks(self):
        assert numeric_fraction(["19,639", "Ithaca", ""]) == pytest.approx(0.5)

    def test_numeric_fraction_empty(self):
        assert numeric_fraction([]) == 0.0
        assert numeric_fraction(["", ""]) == 0.0


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

text_cells = st.text(
    alphabet=string.ascii_letters + string.digits + " ,.%()-",
    max_size=60,
)


class TestProperties:
    @given(text_cells)
    def test_tokenize_never_raises_and_tokens_nonempty(self, cell):
        for token in tokenize(cell):
            assert token.text

    @given(text_cells)
    def test_tokenize_idempotent_on_token_texts(self, cell):
        """Re-tokenizing the joined token text yields the same texts."""
        once = [t.text for t in tokenize(cell)]
        twice = [t.text for t in tokenize(" ".join(once))]
        assert once == twice

    @given(text_cells)
    def test_normalize_idempotent(self, cell):
        assert normalize_cell(normalize_cell(cell)) == normalize_cell(cell)

    @given(st.lists(text_cells, max_size=8))
    def test_numeric_fraction_bounds(self, cells):
        assert 0.0 <= numeric_fraction(cells) <= 1.0

    @given(st.integers(min_value=-10**12, max_value=10**12))
    def test_integers_single_number_token(self, value):
        tokens = tokenize(str(value))
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.NUMBER
