"""Tests for the Table-Transformer-style TSR baseline."""

from __future__ import annotations

import pytest

from repro.baselines.table_transformer import (
    OBJECT_CLASSES,
    TableObject,
    TableTransformerBaseline,
    TableTransformerConfig,
)
from repro.tables.labels import LevelKind
from repro.tables.model import Table


@pytest.fixture
def detector() -> TableTransformerBaseline:
    # boundary noise off: structural tests need exact bands
    return TableTransformerBaseline(TableTransformerConfig(boundary_noise=0.0))


@pytest.fixture
def noisy_detector() -> TableTransformerBaseline:
    return TableTransformerBaseline()


@pytest.fixture
def relational() -> Table:
    return Table(
        [
            ["name", "score", "year"],
            ["alpha", "12", "2001"],
            ["beta", "34", "2002"],
            ["gamma", "56", "2003"],
        ]
    )


class TestObjects:
    def test_object_validation(self):
        with pytest.raises(ValueError):
            TableObject("chair", (0, 0, 1, 1), 0.5)
        with pytest.raises(ValueError):
            TableObject("table", (2, 0, 1, 1), 0.5)
        with pytest.raises(ValueError):
            TableObject("table", (0, 0, 1, 1), 1.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TableTransformerConfig(max_header_rows=0)
        with pytest.raises(ValueError):
            TableTransformerConfig(boundary_noise=2.0)


class TestDetection:
    def test_six_classes_only(self, detector, relational):
        objects = detector.detect(relational)
        assert {o.kind for o in objects} <= set(OBJECT_CLASSES)

    def test_table_rows_cols_detected(self, detector, relational):
        objects = detector.detect(relational)
        kinds = [o.kind for o in objects]
        assert kinds.count("table") == 1
        assert kinds.count("table row") == relational.n_rows
        assert kinds.count("table column") == relational.n_cols

    def test_column_header_band(self, detector, relational):
        headers = [
            o for o in detector.detect(relational) if o.kind == "table column header"
        ]
        assert len(headers) == 1
        assert headers[0].bbox == (0, 0, 1, relational.n_cols)

    def test_empty_table(self, detector):
        assert detector.detect(Table([])) == []

    def test_spanning_cells(self, detector):
        table = Table(
            [
                ["Group A", "", "Group B", ""],
                ["a", "b", "c", "d"],
                ["1", "2", "3", "4"],
                ["5", "6", "7", "8"],
            ]
        )
        spans = [
            o for o in detector.detect(table) if o.kind == "table spanning cell"
        ]
        assert len(spans) == 2
        assert spans[0].bbox == (0, 0, 1, 2)

    def test_projected_row_header(self, detector):
        table = Table(
            [
                ["a", "b", "c"],
                ["1", "2", "3"],
                ["Subtotal", "", ""],
                ["4", "5", "6"],
            ]
        )
        projected = [
            o
            for o in detector.detect(table)
            if o.kind == "table projected row header"
        ]
        assert len(projected) == 1
        assert projected[0].bbox[0] == 2


class TestClassify:
    def test_relational(self, detector, relational):
        annotation = detector.classify(relational)
        assert annotation.hmd_depth == 1
        assert annotation.row_labels[1].kind is LevelKind.DATA

    def test_no_vmd(self, detector, relational):
        annotation = detector.classify(relational)
        assert all(
            label.kind is LevelKind.DATA for label in annotation.col_labels
        )

    def test_projected_rows_are_cmd(self, detector):
        table = Table(
            [["a", "b"], ["1", "2"], ["Subtotal", ""], ["3", "4"]]
        )
        annotation = detector.classify(table)
        assert annotation.row_labels[2].kind is LevelKind.CMD

    def test_textual_body_degrades_confidence(self, detector):
        """TT's weakness: no numeric body, low-confidence header."""
        table = Table([["a", "b"], ["x", "y"], ["z", "w"]])
        headers = [
            o for o in detector.detect(table) if o.kind == "table column header"
        ]
        assert not headers or headers[0].score < 0.9


class TestBoundaryNoise:
    def test_deterministic(self, noisy_detector, relational):
        a = noisy_detector.classify(relational)
        b = noisy_detector.classify(relational)
        assert a.row_labels == b.row_labels

    def test_noise_changes_some_tables(self, noisy_detector, ckg_eval):
        clean = TableTransformerBaseline(
            TableTransformerConfig(boundary_noise=0.0)
        )
        differs = 0
        for item in ckg_eval:
            if (
                noisy_detector.classify(item.table).row_labels
                != clean.classify(item.table).row_labels
            ):
                differs += 1
        assert differs > 0
