"""Tests for the from-scratch decision tree and random forest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.forest.forest import ForestConfig, RandomForest
from repro.baselines.forest.tree import DecisionTree, TreeConfig


def _blobs(n: int = 120, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=0.0, scale=0.5, size=(n // 2, 4))
    b = rng.normal(loc=2.0, scale=0.5, size=(n // 2, 4))
    X = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


def _xor(n: int = 200, seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestTreeConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            TreeConfig(max_depth=0)
        with pytest.raises(ValueError):
            TreeConfig(min_samples_split=1)
        with pytest.raises(ValueError):
            TreeConfig(min_samples_leaf=0)


class TestDecisionTree:
    def test_fit_validation(self):
        tree = DecisionTree()
        with pytest.raises(ValueError):
            tree.fit(np.zeros(3), np.zeros(3))  # not 2-D
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            tree.fit(np.empty((0, 2)), np.empty(0))

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_separable_blobs(self):
        X, y = _blobs()
        tree = DecisionTree().fit(X, y)
        assert (tree.predict(X) == y).mean() >= 0.95

    def test_xor_needs_depth(self):
        X, y = _xor()
        deep = DecisionTree(TreeConfig(max_depth=6)).fit(X, y)
        shallow = DecisionTree(TreeConfig(max_depth=1)).fit(X, y)
        assert (deep.predict(X) == y).mean() > (shallow.predict(X) == y).mean()

    def test_probabilities_sum_to_one(self):
        X, y = _blobs()
        tree = DecisionTree().fit(X, y)
        proba = tree.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTree().fit(X, y)
        assert tree.depth() == 0

    def test_constant_features_yield_stump(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTree().fit(X, y)
        assert tree.depth() == 0
        proba = tree.predict_proba(X[:1])
        np.testing.assert_allclose(proba[0], [0.5, 0.5])

    def test_max_depth_respected(self):
        X, y = _xor()
        tree = DecisionTree(TreeConfig(max_depth=3)).fit(X, y)
        assert tree.depth() <= 3

    def test_deterministic(self):
        X, y = _blobs()
        config = TreeConfig(max_features=2)
        a = DecisionTree(config, seed=5).fit(X, y).predict(X)
        b = DecisionTree(config, seed=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestRandomForest:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ForestConfig(n_trees=0)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            RandomForest().fit(np.zeros((2, 2)), np.zeros(3))

    def test_unfitted(self):
        assert not RandomForest().is_fitted
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 2)))

    def test_blobs_accuracy(self):
        X, y = _blobs()
        forest = RandomForest(ForestConfig(n_trees=10, seed=2)).fit(X, y)
        assert (forest.predict(X) == y).mean() >= 0.95

    def test_xor_beats_stump(self):
        X, y = _xor()
        forest = RandomForest(ForestConfig(n_trees=15, max_depth=6)).fit(X, y)
        assert (forest.predict(X) == y).mean() >= 0.9

    def test_probabilities(self):
        X, y = _blobs()
        forest = RandomForest(ForestConfig(n_trees=5)).fit(X, y)
        proba = forest.predict_proba(X[:7])
        assert proba.shape == (7, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_deterministic(self):
        X, y = _blobs()
        a = RandomForest(ForestConfig(n_trees=5, seed=9)).fit(X, y).predict(X)
        b = RandomForest(ForestConfig(n_trees=5, seed=9)).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_class_space_stable_under_bootstrap(self):
        """A resample may miss a class; probabilities keep full width."""
        X = np.vstack([np.zeros((30, 2)), np.ones((2, 2)) * 5])
        y = np.array([0] * 30 + [1] * 2)
        forest = RandomForest(ForestConfig(n_trees=10, seed=0)).fit(X, y)
        assert forest.predict_proba(X).shape[1] == 2
