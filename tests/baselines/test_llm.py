"""Tests for the simulated LLM stack: prompts, mock models, RAG, harness."""

from __future__ import annotations

import pytest

from repro.baselines.llm.harness import LLMHarness
from repro.baselines.llm.mock_llm import BEHAVIORS, GPT_3_5, GPT_4, LLMBehavior, MockLLM
from repro.baselines.llm.prompts import (
    SYSTEM_MESSAGE,
    build_user_prompt,
    format_llm_response,
    parse_llm_response,
)
from repro.baselines.llm.rag import RAGStore
from repro.core.metrics import evaluate_corpus, table_level_accuracy
from repro.tables.labels import LevelKind
from repro.tables.model import Table


class TestPrompts:
    def test_prompt_contains_dimensions_and_csv(self, simple_table):
        prompt = build_user_prompt(simple_table)
        assert "4 rows and 4 columns" in prompt
        assert "New York" in prompt

    def test_rag_html_appended(self, simple_table):
        prompt = build_user_prompt(simple_table, rag_html="<table>X</table>")
        assert "PubMed" in prompt
        assert "<table>X</table>" in prompt

    def test_system_message_matches_paper(self):
        assert "helpful assistant who understands table data" in SYSTEM_MESSAGE


class TestResponseFormat:
    def test_round_trip(self):
        response = format_llm_response({0: 1, 1: 2}, {0: 1}, n_rows=5)
        annotation = parse_llm_response(response, n_rows=5, n_cols=3)
        assert annotation.row_labels[0].level == 1
        assert annotation.row_labels[1].level == 2
        assert annotation.row_labels[2].kind is LevelKind.DATA
        assert annotation.col_labels[0].kind is LevelKind.VMD

    def test_none_sections(self):
        response = format_llm_response({}, {}, n_rows=3)
        annotation = parse_llm_response(response, n_rows=3, n_cols=2)
        assert all(l.kind is LevelKind.DATA for l in annotation.row_labels)

    def test_out_of_range_claims_dropped(self):
        response = "HMD: Row 99 (level 1)\nVMD: Column 7 (level 1)"
        annotation = parse_llm_response(response, n_rows=3, n_cols=2)
        assert all(l.kind is LevelKind.DATA for l in annotation.row_labels)

    def test_duplicate_claims_keep_first(self):
        response = "HMD: Row 1 (level 1), Row 1 (level 3)"
        annotation = parse_llm_response(response, n_rows=2, n_cols=1)
        assert annotation.row_labels[0].level == 1

    def test_garbage_response(self):
        annotation = parse_llm_response("I cannot help with that.", n_rows=2, n_cols=2)
        assert all(l.kind is LevelKind.DATA for l in annotation.row_labels)


class TestBehavior:
    def test_presets_registered(self):
        assert set(BEHAVIORS) == {"gpt-3.5", "gpt-4"}
        assert GPT_4.p_vmd[0] > GPT_3_5.p_vmd[0]

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            LLMBehavior(name="x", p_hmd_first=1.2)

    def test_named_unknown(self):
        with pytest.raises(KeyError):
            MockLLM.named("gpt-7")


class TestMockLLM:
    def test_deterministic(self, simple_table):
        llm = MockLLM.named("gpt-4")
        prompt = build_user_prompt(simple_table)
        assert llm.complete(SYSTEM_MESSAGE, prompt) == llm.complete(
            SYSTEM_MESSAGE, prompt
        )

    def test_different_tables_different_randomness(self):
        llm = MockLLM.named("gpt-3.5")
        t1 = Table([["a", "b"], ["1", "2"]], name="t1")
        t2 = Table([["c", "d"], ["3", "4"]], name="t2")
        r1 = llm.complete(SYSTEM_MESSAGE, build_user_prompt(t1))
        r2 = llm.complete(SYSTEM_MESSAGE, build_user_prompt(t2))
        assert isinstance(r1, str) and isinstance(r2, str)

    def test_numeric_header_confuses(self):
        """The paper's documented quirk: numeric headers read as data
        unless rescued by parentheses/keywords."""
        rescued_hits = 0
        plain_hits = 0
        n = 40
        llm = MockLLM.named("gpt-3.5")
        for i in range(n):
            plain = Table(
                [["2019", "2020", "2021"], ["1", "2", "3"], ["4", "5", "6"]],
                name=f"p{i}",
            )
            rescued = Table(
                [["total 2019", "total 2020", "total 2021"],
                 ["1", "2", "3"], ["4", "5", "6"]],
                name=f"r{i}",
            )
            for table, bucket in ((plain, "plain"), (rescued, "rescued")):
                response = llm.complete(
                    SYSTEM_MESSAGE, build_user_prompt(table)
                )
                annotation = parse_llm_response(
                    response, n_rows=3, n_cols=3
                )
                hit = annotation.row_labels[0].kind is LevelKind.HMD
                if bucket == "plain":
                    plain_hits += hit
                else:
                    rescued_hits += hit
        assert rescued_hits > plain_hits

    def test_vmd_level3_hopeless(self, ckg_eval):
        """VMD level 3 without RAG is 0% for both models (Table VI)."""
        for name in ("gpt-3.5", "gpt-4"):
            harness = LLMHarness(MockLLM.named(name))
            pairs = [
                (item.annotation, harness.classify(item.table))
                for item in ckg_eval
                if item.vmd_depth >= 3
            ]
            if pairs:
                acc = table_level_accuracy(pairs, kind=LevelKind.VMD, level=3)
                assert acc == 0.0

    def test_bad_prompt_raises(self):
        with pytest.raises(ValueError):
            MockLLM.named("gpt-4").complete(SYSTEM_MESSAGE, "")


class TestRAG:
    def test_store_indexes_html_only(self, ckg_train):
        store = RAGStore(ckg_train)
        with_html = sum(1 for item in ckg_train if item.html)
        assert len(store) == with_html

    def test_retrieval_hit_and_miss(self, ckg_train):
        store = RAGStore(ckg_train)
        hit = next(item for item in ckg_train if item.html)
        miss = next(item for item in ckg_train if not item.html)
        assert store.retrieve(hit.table) == hit.html
        assert store.retrieve(miss.table) is None

    def test_rag_improves_deep_hmd(self, ckg_eval):
        """Sec. IV-I: the retrieved header tags lift deep-level accuracy."""
        plain = LLMHarness(MockLLM.named("gpt-4"))
        rag = LLMHarness(MockLLM.named("gpt-4"), rag=RAGStore(ckg_eval))
        deep = [item for item in ckg_eval if item.hmd_depth >= 2]
        plain_pairs = [(i.annotation, plain.classify(i.table)) for i in deep]
        rag_pairs = [(i.annotation, rag.classify(i.table)) for i in deep]
        plain_acc = table_level_accuracy(plain_pairs, kind=LevelKind.HMD, level=2)
        rag_acc = table_level_accuracy(rag_pairs, kind=LevelKind.HMD, level=2)
        assert rag_acc >= plain_acc


class TestHarness:
    def test_name(self):
        assert LLMHarness(MockLLM.named("gpt-4")).name == "gpt-4"
        assert (
            LLMHarness(MockLLM.named("gpt-4"), rag=RAGStore()).name == "rag+gpt-4"
        )

    def test_annotation_shape_preserved(self, ckg_eval):
        harness = LLMHarness(MockLLM.named("gpt-3.5"))
        item = ckg_eval[0]
        annotation = harness.classify(item.table)
        assert len(annotation.row_labels) == item.table.n_rows
        assert len(annotation.col_labels) == item.table.n_cols

    def test_hmd1_strong(self, ckg_eval):
        """Both models find the first header row almost always."""
        harness = LLMHarness(MockLLM.named("gpt-4"))
        result = evaluate_corpus(ckg_eval, harness.classify)
        assert result.hmd_accuracy[1] >= 0.85
