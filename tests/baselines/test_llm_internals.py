"""Targeted tests for mock-LLM internals (prompt parsing, RAG evidence)."""

from __future__ import annotations

import pytest

from repro.baselines.llm.mock_llm import MockLLM
from repro.baselines.llm.prompts import SYSTEM_MESSAGE, build_user_prompt
from repro.tables.html import render_html_table
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


@pytest.fixture
def table() -> Table:
    return Table(
        [["age", "duration", "total"], ["1", "2", "3"], ["4", "5", "6"]],
        name="t",
    )


class TestPromptParsing:
    def test_csv_recovered_exactly(self, table):
        llm = MockLLM.named("gpt-4")
        parsed, rag = llm._parse_prompt(build_user_prompt(table))
        assert parsed.rows == table.rows
        assert rag is None

    def test_rag_html_extracted(self, table):
        llm = MockLLM.named("gpt-4")
        html = "<table><tr><td>x</td></tr></table>"
        parsed, rag = llm._parse_prompt(build_user_prompt(table, rag_html=html))
        assert parsed.rows == table.rows
        assert rag == html

    def test_quoted_cells_survive(self):
        table = Table([['say "hi", twice', "b"], ["1", "2"]])
        llm = MockLLM.named("gpt-3.5")
        parsed, _ = llm._parse_prompt(build_user_prompt(table))
        assert parsed.rows == table.rows


class TestHtmlEvidence:
    def test_matching_html_tags_rows_and_cols(self, table):
        annotation = TableAnnotation.from_depths(3, 3, hmd_depth=1, vmd_depth=1)
        html = render_html_table(table, annotation)
        rows, cols = MockLLM._html_evidence(html, table)
        assert 0 in rows
        assert 0 in cols

    def test_shape_mismatch_discards_evidence(self, table):
        other = Table([["a", "b"], ["1", "2"]])
        annotation = TableAnnotation.from_depths(2, 2, hmd_depth=1)
        html = render_html_table(other, annotation)
        rows, cols = MockLLM._html_evidence(html, table)
        assert rows == set() and cols == set()

    def test_no_html(self, table):
        assert MockLLM._html_evidence(None, table) == (set(), set())


class TestNumericRescue:
    @pytest.mark.parametrize(
        "row,rescued",
        [
            (("2019", "2020"), False),
            (("total 2019", "2020"), True),
            (("86 (50.3%)", "12"), True),
            (("number of cases", "5"), True),
            (("plain words",), False),
        ],
    )
    def test_patterns(self, row, rescued):
        assert MockLLM._numeric_rescue(row) is rescued


class TestDeterminismAcrossSeeds:
    def test_seed_changes_decisions(self, table):
        prompt = build_user_prompt(table)
        a = MockLLM.named("gpt-3.5", seed=0).complete(SYSTEM_MESSAGE, prompt)
        # Same seed -> identical; the response is a pure function.
        b = MockLLM.named("gpt-3.5", seed=0).complete(SYSTEM_MESSAGE, prompt)
        assert a == b
