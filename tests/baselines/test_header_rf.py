"""Tests for header features and the RF header-detection baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.forest.features import N_FEATURES, col_features, row_features
from repro.baselines.forest.header_rf import HeaderForestClassifier
from repro.core.metrics import evaluate_corpus
from repro.tables.labels import LevelKind
from repro.tables.model import Table


class TestFeatures:
    def test_row_shape(self, simple_table):
        features = row_features(simple_table)
        assert features.shape == (simple_table.n_rows, N_FEATURES)
        assert np.all(np.isfinite(features))

    def test_col_shape(self, simple_table):
        features = col_features(simple_table)
        assert features.shape == (simple_table.n_cols, N_FEATURES)

    def test_empty_table(self):
        assert row_features(Table([])).shape == (0, N_FEATURES)

    def test_position_features(self, simple_table):
        features = row_features(simple_table)
        assert features[0, 1] == 1.0  # is-first flag
        assert features[-1, 2] == 1.0  # is-last flag
        assert features[0, 0] == 0.0  # relative position
        assert features[-1, 0] == 1.0

    def test_numeric_fraction_feature(self):
        table = Table([["a", "b"], ["1", "2"]])
        features = row_features(table)
        assert features[0, 4] == 0.0
        assert features[1, 4] == 1.0

    def test_neighbour_feature_looks_down(self):
        table = Table([["a", "b"], ["1", "2"], ["x", "y"]])
        features = row_features(table)
        assert features[0, 10] == 1.0  # the row below is fully numeric
        assert features[1, 10] == 0.0

    def test_cols_are_transposed_rows(self, simple_table):
        np.testing.assert_allclose(
            col_features(simple_table), row_features(simple_table.transpose())
        )


class TestHeaderForest:
    @pytest.fixture(scope="class")
    def model(self, ckg_train):
        return HeaderForestClassifier().fit(ckg_train[:40])

    def test_empty_corpus(self):
        with pytest.raises(ValueError):
            HeaderForestClassifier().fit([])

    def test_unfitted(self, simple_table):
        with pytest.raises(RuntimeError):
            HeaderForestClassifier().classify(simple_table)

    def test_is_fitted(self, model):
        assert model.is_fitted

    def test_monolithic_levels(self, model, ckg_eval):
        """RF output never claims a depth beyond level 1."""
        for item in ckg_eval[:10]:
            annotation = model.classify(item.table)
            for label in annotation.row_labels:
                if label.kind is LevelKind.HMD:
                    assert label.level == 1
            for label in annotation.col_labels:
                if label.kind is LevelKind.VMD:
                    assert label.level == 1

    def test_reasonable_accuracy(self, model, ckg_eval):
        result = evaluate_corpus(ckg_eval, model.classify)
        assert result.hmd_accuracy[1] >= 0.8
        assert result.row_binary_accuracy >= 0.8

    def test_annotation_shape(self, model, simple_table):
        annotation = model.classify(simple_table)
        assert len(annotation.row_labels) == simple_table.n_rows
        assert len(annotation.col_labels) == simple_table.n_cols
