"""Tests for the Pytheas-style fuzzy line classifier."""

from __future__ import annotations

import pytest

from repro.baselines.pytheas import (
    CLASSES,
    DATA,
    HEADER,
    PytheasClassifier,
    PytheasConfig,
)
from repro.core.metrics import evaluate_corpus
from repro.tables.labels import LevelKind
from repro.tables.model import Table


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            PytheasConfig(laplace=-1)
        with pytest.raises(ValueError):
            PytheasConfig(context_window=0)


class TestTraining:
    def test_empty_corpus(self):
        with pytest.raises(ValueError):
            PytheasClassifier().fit([])

    def test_unfitted_raises(self, simple_table):
        with pytest.raises(RuntimeError):
            PytheasClassifier().classify(simple_table)

    def test_weights_learned(self, ckg_train):
        model = PytheasClassifier().fit(ckg_train)
        assert model.is_fitted
        for weights in model.weights.values():
            assert set(weights) == set(CLASSES)
            for value in weights.values():
                assert 0.0 <= value <= 1.0

    def test_first_line_rule_prefers_header(self, ckg_train):
        model = PytheasClassifier().fit(ckg_train)
        weights = model.weights["first_line"]
        assert weights[HEADER] > weights[DATA]

    def test_mostly_numeric_rule_prefers_data(self, ckg_train):
        model = PytheasClassifier().fit(ckg_train)
        weights = model.weights["mostly_numeric"]
        assert weights[DATA] > weights[HEADER]


class TestInference:
    @pytest.fixture(scope="class")
    def model(self, ckg_train):
        return PytheasClassifier().fit(ckg_train)

    def test_line_confidences_shape(self, model, simple_table):
        confidences = model.line_confidences(simple_table)
        assert len(confidences) == simple_table.n_rows
        assert all(set(c) == set(CLASSES) for c in confidences)

    def test_classify_lines_values(self, model, simple_table):
        labels = model.classify_lines(simple_table)
        assert all(label in CLASSES for label in labels)
        assert labels[0] == HEADER

    def test_classify_relational_table(self, model):
        table = Table(
            [
                ["severity", "duration", "total"],
                ["12", "34", "56"],
                ["78", "90", "11"],
            ]
        )
        annotation = model.classify(table)
        assert annotation.row_labels[0].kind is LevelKind.HMD
        assert annotation.row_labels[0].level == 1
        assert annotation.row_labels[1].kind is LevelKind.DATA

    def test_no_vmd_ever(self, model, ckg_eval):
        for item in ckg_eval[:10]:
            annotation = model.classify(item.table)
            assert all(
                label.kind is LevelKind.DATA for label in annotation.col_labels
            )

    def test_all_headers_level_one(self, model, ckg_eval):
        """Pytheas is level-blind: every header claim is level 1."""
        for item in ckg_eval[:10]:
            annotation = model.classify(item.table)
            for label in annotation.row_labels:
                if label.kind is LevelKind.HMD:
                    assert label.level == 1

    def test_corpus_level1_accuracy(self, model, ckg_eval):
        """The paper's headline: Pytheas is excellent at HMD level 1."""
        result = evaluate_corpus(ckg_eval, model.classify)
        assert result.hmd_accuracy[1] >= 0.9
