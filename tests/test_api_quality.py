"""Meta tests on the public API: docstrings, exports, importability.

Library-quality guards: everything listed in an ``__all__`` must exist,
be importable, and carry a docstring; the package's public modules must
document themselves.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.core",
    "repro.tables",
    "repro.text",
    "repro.embeddings",
    "repro.corpus",
    "repro.baselines",
    "repro.experiments",
]


def _walk_modules() -> list[str]:
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


class TestImportability:
    @pytest.mark.parametrize("name", PUBLIC_PACKAGES)
    def test_packages_import(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} has no module docstring"

    def test_every_module_imports(self):
        for name in _walk_modules():
            module = importlib.import_module(name)
            assert module is not None

    def test_every_module_has_docstring(self):
        for name in _walk_modules():
            module = importlib.import_module(name)
            if name.endswith("__main__"):
                continue
            assert module.__doc__, f"{name} has no module docstring"


class TestAllExports:
    @pytest.mark.parametrize("name", PUBLIC_PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    @pytest.mark.parametrize("name", PUBLIC_PACKAGES)
    def test_exported_objects_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{name}.{symbol} has no docstring"

    def test_public_classes_have_documented_methods(self):
        """Spot-check: the flagship classes document every public method."""
        from repro.core.pipeline import MetadataPipeline
        from repro.core.classifier import MetadataClassifier
        from repro.tables.query import StructuredTable

        for cls in (MetadataPipeline, MetadataClassifier, StructuredTable):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


class TestVersion:
    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))
