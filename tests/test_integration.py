"""End-to-end integration tests across the whole library."""

from __future__ import annotations

import pytest

from repro.core.metrics import evaluate_corpus
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.io import load_corpus, save_corpus
from repro.corpus.profiles import get_profile
from repro.corpus.registry import build_split
from repro.corpus.vocabularies import get_domain

_DOMAIN_BY_DATASET = {
    "cord19": "biomedical",
    "ckg": "biomedical",
    "cius": "crime",
    "saus": "census",
    "wdc": "web",
    "pubtables": "academic",
}


@pytest.mark.parametrize("dataset", sorted(_DOMAIN_BY_DATASET))
def test_every_profile_end_to_end(dataset):
    """Fit + evaluate on every dataset profile (hashed backend for
    speed; the word2vec path is covered by the experiments suite)."""
    profile = get_profile(dataset)
    train, evaluation = build_split(dataset, n_train=50, n_eval=20, seed=21)
    fields = get_domain(_DOMAIN_BY_DATASET[dataset]).field_map()
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=fields,
        bootstrap="html" if profile.has_markup else "first_level",
        n_pairs=200,
    )
    pipeline = MetadataPipeline(config).fit(train)
    result = evaluate_corpus(evaluation, pipeline.classify)
    assert result.n_tables == 20
    assert result.hmd_accuracy[1] >= 0.7, dataset
    assert result.row_binary_accuracy >= 0.7, dataset


def test_corpus_file_to_fit_roundtrip(tmp_path):
    """The operational loop: generate -> save JSONL -> load -> fit ->
    classify, with no in-memory shortcuts."""
    train, evaluation = build_split("ckg", n_train=40, n_eval=5, seed=33)
    path = tmp_path / "train.jsonl.gz"
    save_corpus(train, path)
    reloaded = load_corpus(path)

    fields = get_domain("biomedical").field_map()
    pipeline = MetadataPipeline(
        PipelineConfig(embedding="hashed", hashed_fields=fields, n_pairs=100)
    ).fit(reloaded)
    for item in evaluation:
        annotation = pipeline.classify(item.table)
        assert len(annotation.row_labels) == item.table.n_rows


def test_save_load_classify_chain(tmp_path):
    """fit -> save -> load -> self-train -> structural query."""
    from repro.core.persistence import load_pipeline, save_pipeline
    from repro.core.selftrain import refine_self_training
    from repro.tables.query import StructuredTable

    train, evaluation = build_split("cius", n_train=40, n_eval=5, seed=8)
    fields = get_domain("crime").field_map()
    pipeline = MetadataPipeline(
        PipelineConfig(
            embedding="hashed",
            hashed_fields=fields,
            bootstrap="first_level",
            n_pairs=100,
        )
    ).fit(train)
    loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "m"))
    refined = refine_self_training(loaded, train)
    table = evaluation[0].table
    structured = StructuredTable(table, refined.classify(table))
    records = structured.to_records()
    assert len(records) == structured.n_data_cells
