"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.persistence import save_pipeline
from repro.tables.csvio import table_to_csv


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cord19", "ckg", "wdc", "cius", "saus", "pubtables"):
            assert name in out
        assert "no markup" in out


class TestClassify:
    @pytest.fixture
    def model_path(self, hashed_pipeline, tmp_path):
        return save_pipeline(hashed_pipeline, tmp_path / "model.npz")

    def test_classify_csv(self, model_path, tmp_path, ckg_eval, capsys):
        table_path = tmp_path / "table.csv"
        table_path.write_text(table_to_csv(ckg_eval[0].table))
        assert main(["classify", str(table_path), "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "HMD depth:" in out
        assert "row labels:" in out

    def test_classify_with_evidence(self, model_path, tmp_path, ckg_eval, capsys):
        table_path = tmp_path / "table.csv"
        table_path.write_text(table_to_csv(ckg_eval[1].table))
        assert (
            main(
                ["classify", str(table_path), "--model", str(model_path),
                 "--evidence"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "evidence:" in out
        assert "row 0" in out

    def test_classify_json(self, model_path, tmp_path, ckg_eval, capsys):
        from repro.tables.jsonio import table_to_json

        table_path = tmp_path / "table.json"
        table_path.write_text(table_to_json(ckg_eval[0].table))
        assert main(["classify", str(table_path), "--model", str(model_path)]) == 0
        assert "VMD depth:" in capsys.readouterr().out

    def test_classify_markdown(self, model_path, tmp_path, ckg_eval, capsys):
        from repro.tables.markdown import table_to_markdown

        table_path = tmp_path / "table.md"
        table_path.write_text(table_to_markdown(ckg_eval[0].table))
        assert main(["classify", str(table_path), "--model", str(model_path)]) == 0
        assert "HMD depth:" in capsys.readouterr().out


class TestCorpus:
    def test_describe_only(self, capsys):
        assert main(["corpus", "--dataset", "wdc", "--n-tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "wdc" in out
        assert "HMD depth counts" in out

    def test_write_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "corpus.jsonl"
        assert (
            main(
                ["corpus", "--dataset", "cius", "--n-tables", "5",
                 "--out", str(out_path)]
            )
            == 0
        )
        assert out_path.exists()
        assert "wrote 5 tables" in capsys.readouterr().out
        from repro.corpus.io import load_corpus

        assert len(load_corpus(out_path)) == 5


class TestDiagnose:
    def test_renders_spectrum(self, hashed_pipeline, tmp_path, capsys):
        model = save_pipeline(hashed_pipeline, tmp_path / "m.npz")
        assert (
            main(
                ["diagnose", "--model", str(model), "--dataset", "ckg",
                 "--n-tables", "15"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "separation AUC" in out
        assert "metadata-data angles" in out


class TestArgErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestClassifyMulti:
    @pytest.fixture
    def model_path(self, hashed_pipeline, tmp_path):
        return save_pipeline(hashed_pipeline, tmp_path / "model.npz")

    def test_multiple_inputs_emit_jsonl(
        self, model_path, tmp_path, ckg_eval, capsys
    ):
        import json

        paths = []
        for i in range(3):
            path = tmp_path / f"t{i}.csv"
            path.write_text(table_to_csv(ckg_eval[i].table))
            paths.append(str(path))
        assert main(["classify", *paths, "--model", str(model_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line, spec in zip(lines, paths):
            record = json.loads(line)
            assert record["source"] == spec
            assert "row_labels" in record

    def test_single_input_json_flag(self, model_path, tmp_path, ckg_eval, capsys):
        import json

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        assert (
            main(["classify", str(path), "--model", str(model_path), "--json"])
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["hmd_depth"] >= 0

    def test_stdin_dash(self, model_path, ckg_eval, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(table_to_csv(ckg_eval[0].table))
        )
        assert main(["classify", "-", "--model", str(model_path)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["name"] == "stdin"
        assert record["source"] == "-"


class TestBatch:
    @pytest.fixture
    def model_path(self, hashed_pipeline, tmp_path):
        return save_pipeline(hashed_pipeline, tmp_path / "model.npz")

    def test_directory_to_jsonl(self, model_path, tmp_path, ckg_eval, capsys):
        import json

        table_dir = tmp_path / "tables"
        table_dir.mkdir()
        for i in range(5):
            (table_dir / f"t{i}.csv").write_text(
                table_to_csv(ckg_eval[i].table)
            )
        out = tmp_path / "results.jsonl"
        assert (
            main(
                ["batch", str(table_dir), "--model", str(model_path),
                 "--workers", "2", "--out", str(out)]
            )
            == 0
        )
        records = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(records) == 5
        assert all("row_labels" in r for r in records)
        assert "classified 5/5" in capsys.readouterr().err

    def test_stdout_default(self, model_path, tmp_path, ckg_eval, capsys):
        import json

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        assert main(["batch", str(path), "--model", str(model_path)]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["n_rows"] == ckg_eval[0].table.n_rows

    def test_partial_failure_is_nonzero(
        self, model_path, tmp_path, ckg_eval, capsys
    ):
        table_dir = tmp_path / "tables"
        table_dir.mkdir()
        (table_dir / "good.csv").write_text(table_to_csv(ckg_eval[0].table))
        (table_dir / "bad.json").write_text("{not json")
        assert (
            main(["batch", str(table_dir), "--model", str(model_path)]) == 1
        )
        # The summary (with the error count) lands on stderr even
        # without --out.
        err = capsys.readouterr().err
        assert "classified 1/2" in err
        assert "1 errors" in err


class TestTrace:
    @pytest.fixture
    def model_path(self, hashed_pipeline, tmp_path):
        return save_pipeline(hashed_pipeline, tmp_path / "model.npz")

    def test_trace_prints_records_and_profile(
        self, model_path, tmp_path, ckg_eval, capsys
    ):
        import json

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        assert main(["trace", str(path), "--model", str(model_path)]) == 0
        captured = capsys.readouterr()
        record = json.loads(captured.out.strip())
        assert record["row_labels"]
        # the top-spans profile lands on stderr
        assert "classify" in captured.err
        assert "self ms" in captured.err

    def test_trace_out_writes_chrome_trace(
        self, model_path, tmp_path, ckg_eval, capsys
    ):
        import json

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        out = tmp_path / "trace.json"
        assert (
            main(["trace", str(path), "--model", str(model_path),
                  "--out", str(out)])
            == 0
        )
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "B"}
        assert {"table", "classify", "embed", "tokenize"} <= names
        assert sum(1 for e in events if e["ph"] == "B") == sum(
            1 for e in events if e["ph"] == "E"
        )

    def test_trace_leaves_tracing_disabled(self, model_path, tmp_path, ckg_eval):
        from repro import obs

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        assert main(["trace", str(path), "--model", str(model_path)]) == 0
        assert not obs.get_tracer().enabled

    def test_batch_trace_out(self, model_path, tmp_path, ckg_eval, capsys):
        import json

        table_dir = tmp_path / "tables"
        table_dir.mkdir()
        for i in range(3):
            (table_dir / f"t{i}.csv").write_text(
                table_to_csv(ckg_eval[i].table)
            )
        out = tmp_path / "results.jsonl"
        trace_out = tmp_path / "trace.json"
        assert (
            main(["batch", str(table_dir), "--model", str(model_path),
                  "--out", str(out), "--trace-out", str(trace_out)])
            == 0
        )
        assert "wrote" in capsys.readouterr().err
        document = json.loads(trace_out.read_text())
        begins = [e for e in document["traceEvents"] if e["ph"] == "B"]
        names = {e["name"] for e in begins}
        # The streaming plane's span vocabulary: per-file "table" roots
        # with read/parse stages inside, chunk packing, fused classify.
        assert {
            "table", "ingest.read", "ingest.parse", "ingest.pack", "classify",
        } <= names
        # one root "table" span per input file
        assert sum(1 for e in begins if e["name"] == "table") == 3

    def test_batch_trace_out_jsonl(self, model_path, tmp_path, ckg_eval):
        import json

        path = tmp_path / "t.csv"
        path.write_text(table_to_csv(ckg_eval[0].table))
        trace_out = tmp_path / "spans.jsonl"
        assert (
            main(["batch", str(path), "--model", str(model_path),
                  "--out", str(tmp_path / "r.jsonl"),
                  "--trace-out", str(trace_out)])
            == 0
        )
        records = [
            json.loads(line) for line in trace_out.read_text().splitlines()
        ]
        assert any(r["name"] == "classify" for r in records)


class TestVerbose:
    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "datasets"]) == 0
        assert "ckg" in capsys.readouterr().out


class TestConvert:
    @pytest.fixture
    def model_path(self, hashed_pipeline, tmp_path):
        return save_pipeline(hashed_pipeline, tmp_path / "model.npz")

    def test_npz_to_directory_and_back(
        self, model_path, tmp_path, ckg_eval, capsys
    ):
        from repro.core.persistence import is_pipeline_dir, load_pipeline

        store = tmp_path / "store"
        assert main(["convert", str(model_path), str(store)]) == 0
        assert is_pipeline_dir(store)
        assert "directory store" in capsys.readouterr().out

        back = tmp_path / "back.npz"
        assert main(["convert", str(store), str(back)]) == 0
        assert "npz archive" in capsys.readouterr().out

        table = ckg_eval[0].table
        assert (
            load_pipeline(store).classify(table)
            == load_pipeline(back).classify(table)
        )

    def test_missing_source_is_an_error(self, tmp_path, capsys):
        from repro.core.persistence import PersistenceError

        with pytest.raises(PersistenceError):
            main(["convert", str(tmp_path / "absent.npz"), str(tmp_path / "d")])


class TestBatchProcs:
    @pytest.fixture
    def model_dir(self, hashed_pipeline, tmp_path):
        from repro.core.persistence import save_pipeline_dir

        return save_pipeline_dir(hashed_pipeline, tmp_path / "model_dir")

    @pytest.fixture
    def table_dir(self, tmp_path, ckg_eval):
        d = tmp_path / "tables"
        d.mkdir()
        for i, item in enumerate(ckg_eval[:6]):
            (d / f"t{i}.csv").write_text(table_to_csv(item.table))
        return d

    def test_procs_matches_thread_path(
        self, model_dir, table_dir, tmp_path, capsys
    ):
        import json

        out_procs = tmp_path / "procs.jsonl"
        out_threads = tmp_path / "threads.jsonl"
        assert main([
            "batch", str(table_dir), "--model", str(model_dir),
            "--procs", "2", "--cache-size", "0", "--out", str(out_procs),
        ]) == 0
        assert main([
            "batch", str(table_dir), "--model", str(model_dir),
            "--workers", "2", "--cache-size", "0", "--out", str(out_threads),
        ]) == 0

        def normalize(path):
            records = [json.loads(l) for l in path.read_text().splitlines()]
            for record in records:
                record.pop("seconds", None)
                record.pop("cached", None)
            return records

        assert normalize(out_procs) == normalize(out_threads)

    def test_procs_trace_out_merges_worker_spans(
        self, model_dir, table_dir, tmp_path, capsys
    ):
        import json

        trace = tmp_path / "trace.json"
        assert main([
            "batch", str(table_dir), "--model", str(model_dir),
            "--procs", "2", "--out", str(tmp_path / "o.jsonl"),
            "--trace-out", str(trace),
        ]) == 0
        document = json.loads(trace.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "table" in names  # worker-side spans made it into the merge
