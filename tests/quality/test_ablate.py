"""Ablation knockout-registry and runner tests."""

import json

import pytest

from repro.quality.ablate import (
    AblationConfig,
    component_names,
    get_components,
    load_ablation_config,
    quick_config,
    run_ablation,
    write_report,
)


def test_registry_covers_the_design_choices():
    names = component_names()
    for expected in (
        "contrastive", "bootstrap-markup", "aggregation-sum",
        "vectorized", "fused", "depth", "cmd-detect",
    ):
        assert expected in names
    for spec in get_components():
        assert spec.kind in ("fit", "classify")
        if spec.kind == "fit":
            assert spec.knock_fit is not None
        else:
            assert spec.knock_classify is not None


def test_unknown_component_rejected_at_config_time():
    with pytest.raises(ValueError, match="unknown components"):
        AblationConfig(components=("no-such-knockout",))


def test_load_config_roundtrip(tmp_path):
    path = tmp_path / "ablation.json"
    path.write_text(json.dumps({
        "dataset": "saus",
        "backends": ["hashed"],
        "components": ["vectorized", "fused"],
        "n_train": 30,
        "n_eval": 10,
    }))
    config = load_ablation_config(path)
    assert config.dataset == "saus"
    assert config.backends == ("hashed",)
    assert config.components == ("vectorized", "fused")
    assert config.seed == 1  # default survives


def test_load_config_rejects_unknown_keys(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"n_trian": 30}))
    with pytest.raises(ValueError, match="n_trian"):
        load_ablation_config(path)


def test_load_config_rejects_non_object(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        load_ablation_config(path)


@pytest.fixture(scope="module")
def small_report():
    config = AblationConfig(
        backends=("hashed",),
        components=("vectorized", "fused", "depth"),
        n_train=30,
        n_eval=16,
        epochs=1,
    )
    return run_ablation(config)


def test_plane_knockouts_are_parity_checks(small_report):
    """Disabling vectorized/fused must not change labels, so their
    measured impact is exactly zero — anything else is a plane bug."""
    by_component = {r.component: r for r in small_report.results}
    assert by_component["vectorized"].delta_hmd1 == 0.0
    assert by_component["fused"].delta_hmd1 == 0.0


def test_report_shape_and_summary(small_report):
    payload = small_report.to_dict()
    assert payload["kind"] == "ablation-report"
    assert len(payload["results"]) == 4  # baseline + 3 knockouts
    summary = payload["summary"]
    assert summary["baseline_hmd1"] == small_report.baseline_hmd1
    assert small_report.baseline_hmd1 is not None
    baseline_rows = [
        r for r in payload["results"] if r["component"] == "baseline"
    ]
    assert len(baseline_rows) == 1
    assert baseline_rows[0]["delta_hmd1"] is None
    assert "baseline hmd1" in small_report.summary()


def test_write_report(tmp_path, small_report):
    out = write_report(small_report, tmp_path / "sub" / "report.json")
    payload = json.loads(out.read_text())
    assert payload == small_report.to_dict()


def test_quick_config_is_small():
    config = quick_config()
    assert config.backends == ("hashed",)
    assert config.n_train <= 60
    assert config.components is None  # every knockout runs in CI
