"""Regression tests for ingestion crashes the fuzzer surfaced (PR 9).

Each test pins a bug found by ``repro fuzz`` and fixed in this PR; the
minimized inputs also live as banked fixtures under ``fixtures/``.
"""

import time

import pytest

from repro.serve.bulk import table_from_path, table_from_text
from repro.tables.csvio import table_from_csv
from repro.tables.html import MAX_SPAN, parse_html_table, render_html_table
from repro.tables.jsonio import table_from_json
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


def test_csv_field_beyond_stdlib_default_limit_parses():
    """csv.field_size_limit defaults to 128 KiB; a single oversized cell
    used to escape as a raw _csv.Error."""
    big = "x" * (128 * 1024 + 1)
    table = table_from_csv(f"a,b\n{big},2\n")
    assert table.rows[1][0] == big


def test_csv_truly_malformed_raises_value_error():
    with pytest.raises(ValueError, match="malformed CSV"):
        table_from_csv('a,"' + "y" * (32 * 1024 * 1024) + "\n")


@pytest.mark.parametrize("payload", ['{"rows": 42}', '{"rows": [42]}'])
def test_json_rows_must_be_cell_lists(payload):
    """Non-list rows used to escape as TypeError from Table()."""
    with pytest.raises(ValueError, match="list of cell lists"):
        table_from_json(payload)


def test_html_hostile_spans_are_clamped():
    """colspan=1000000 used to expand a million-cell grid (50s per
    table); the parser now clamps spans to MAX_SPAN."""
    markup = (
        '<table><tr><td colspan="1000000" rowspan="999999">a</td></tr>'
        "<tr><td>b</td></tr></table>"
    )
    start = time.monotonic()
    parsed = parse_html_table(markup)
    assert time.monotonic() - start < 1.0
    table = parsed.to_table()
    # the clamped rowspan column plus the second row's own cell
    assert table.n_cols <= MAX_SPAN + 1
    assert table.n_rows <= MAX_SPAN + 1


def test_html_wide_colspan_round_trip_is_exact():
    """Render-side span merging stays under the parser's clamp, so even
    a header wider than MAX_SPAN survives a round trip unchanged."""
    width = MAX_SPAN + 20
    header = ["wide"] + [""] * (width - 1)
    body = [f"c{j}" for j in range(width)]
    table = Table([header, body], name="wide")
    annotation = TableAnnotation.from_depths(
        table.n_rows, table.n_cols, hmd_depth=1
    )
    markup = render_html_table(table, annotation, use_colspan=True)
    assert parse_html_table(markup).to_table(name="wide").rows == table.rows


def test_table_from_path_replaces_undecodable_bytes(tmp_path):
    path = tmp_path / "latin.csv"
    path.write_bytes(b"a,b\n\xff\xfe,2\n")
    table = table_from_path(path)
    assert table.rows[0] == ("a", "b")
    assert table.rows[1][1] == "2"


def test_table_from_text_dispatch_stays_value_error_only():
    """The fuzzer's contract: parse rejection is ValueError, anything
    else is a crash.  Hold every suffix to it on a hostile input."""
    for suffix in (".json", ".md", ".html", ".csv"):
        try:
            table_from_text('{"rows": [42]}', suffix=suffix, name="t")
        except ValueError:
            pass
