"""Fuzz campaign tests: determinism, verdict detection, reporting."""

import dataclasses

import pytest

from repro.quality.fuzzer import (
    FuzzCase,
    FuzzConfig,
    FuzzHarness,
    FuzzReport,
    campaign_tables,
    run_case,
    run_cases,
    run_fuzz,
)
from repro.quality.mutators import Mutant, MutatorSpec
from repro.tables.jsonio import table_to_json
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


def test_campaign_is_deterministic(fuzz_config):
    """Same seed + budget => identical case sequence and verdicts."""
    a = run_fuzz(fuzz_config)
    b = run_fuzz(fuzz_config)
    assert a.to_dict() == b.to_dict()
    assert [c.mutator for c in a.cases] == [c.mutator for c in b.cases]
    assert [c.verdict for c in a.cases] == [c.verdict for c in b.cases]


def test_cases_are_sharding_invariant(fuzz_config, harness):
    """A case's outcome depends only on (seed, index), not on which
    other cases ran beside it — the property sharding relies on."""
    full = run_cases(fuzz_config, [harness], range(10))
    for index in (0, 4, 9):
        [alone] = run_cases(fuzz_config, [harness], [index])
        assert alone.to_dict() == full[index].to_dict()


def test_different_seeds_differ(fuzz_config):
    other = dataclasses.replace(fuzz_config, seed=fuzz_config.seed + 1)
    a = run_fuzz(fuzz_config)
    b = run_fuzz(other)
    assert [(c.mutator, c.table_name) for c in a.cases] != [
        (c.mutator, c.table_name) for c in b.cases
    ]


def test_clean_campaign_reports_ok(fuzz_config):
    report = run_fuzz(fuzz_config)
    assert report.ok
    counts = report.counts
    assert counts["crash"] == counts["divergence"] == counts["flip"] == 0
    assert sum(counts.values()) == fuzz_config.budget


class _Raises:
    def classify(self, table):
        raise RuntimeError("injected classify crash")

    def classify_corpus(self, tables):
        raise RuntimeError("injected corpus crash")


class _Disagrees:
    def classify_corpus(self, tables):
        return [
            TableAnnotation.from_depths(t.n_rows, t.n_cols, hmd_depth=0)
            for t in tables
        ]


def _cloned(harness: FuzzHarness) -> FuzzHarness:
    return FuzzHarness(harness.pipeline, backend=harness.backend)


def test_examine_reports_injected_crash(harness):
    table = campaign_tables(FuzzConfig(seed=9, n_tables=4))[0]
    broken = _cloned(harness)
    broken.scalar = _Raises()
    verdict, detail, annotation = broken.examine(table)
    assert verdict == "crash"
    assert "injected classify crash" in detail
    assert annotation is None


def test_examine_reports_injected_divergence(harness):
    table = campaign_tables(FuzzConfig(seed=9, n_tables=4))[0]
    reference = harness.oracle(table)
    # make the fused plane disagree unless the oracle already says depth 0
    broken = _cloned(harness)
    broken.fused = _Disagrees()
    verdict, detail, _ = broken.examine(table)
    fused_labels = _Disagrees().classify_corpus([table])[0]
    if fused_labels == reference:
        assert verdict == "ok"
    else:
        assert verdict == "divergence"
        assert "fused" in detail


class _FlipHarness:
    """Labels depend on a sentinel cell, so a round trip that edits the
    grid flips them — exercises run_case's flip branch end to end."""

    backend = "fake"

    def oracle(self, table: Table) -> TableAnnotation:
        depth = 1 if table.rows and table.rows[0][0] == "X" else 0
        return TableAnnotation.from_depths(
            table.n_rows, table.n_cols, hmd_depth=min(depth, table.n_rows)
        )

    def examine(self, table):
        return "ok", "", self.oracle(table)


def _editing_roundtrip_spec() -> MutatorSpec:
    def fn(table: Table, rng) -> Mutant:
        rows = [list(r) for r in table.rows]
        rows[0][0] = "X"
        edited = Table(rows, name=table.name)
        return Mutant(text=table_to_json(edited), suffix=".json")

    return MutatorSpec(
        name="evil-roundtrip", kind="text", relation="equal",
        description="claims equality but edits the grid", fn=fn,
    )


def test_run_case_detects_label_flip(fuzz_config):
    tables = [Table([["a", "b"], ["c", "d"]], name="flip-me")]
    harness = _FlipHarness()
    oracle_cache = {}

    def oracles(idx):
        if idx not in oracle_cache:
            oracle_cache[idx] = {"fake": harness.oracle(tables[idx])}
        return oracle_cache[idx]

    case = run_case(
        0, fuzz_config, [harness], tables, [_editing_roundtrip_spec()], oracles
    )
    assert case.verdict == "flip"
    assert case.repro is not None
    assert case.repro["kind"] == "roundtrip"
    # the minimized original still flips when round-tripped
    assert case.repro["rows"]


def test_report_roundtrips_through_dict(fuzz_config):
    report = run_fuzz(dataclasses.replace(fuzz_config, budget=5))
    payload = report.to_dict()
    assert payload["kind"] == "fuzz-report"
    rebuilt = FuzzReport(
        config=FuzzConfig.from_dict(payload["config"]),
        cases=[FuzzCase.from_dict(c) for c in payload["cases"]],
    )
    assert rebuilt.to_dict() == payload


def test_config_validation():
    with pytest.raises(ValueError, match="budget"):
        FuzzConfig(budget=0)
    with pytest.raises(ValueError, match="backend"):
        FuzzConfig(backends=())


def test_sharded_run_matches_serial():
    """ShardedPool fan-out returns the identical report (run_task +
    worker-loaded pipelines preserve classify behavior)."""
    config = FuzzConfig(budget=64, seed=9, n_tables=16, n_train=30)
    serial = run_fuzz(config)
    sharded = run_fuzz(config, procs=2)
    assert sharded.to_dict() == serial.to_dict()
