"""Mutator registry unit tests: determinism and declared contracts."""

import numpy as np
import pytest

from repro.corpus.registry import build_corpus
from repro.quality.mutators import (
    Mutant,
    apply_mutator,
    get_mutators,
    mutator_names,
    register_mutator,
)
from repro.serve.bulk import table_from_text
from repro.tables.model import Table


@pytest.fixture(scope="module")
def sample_tables():
    return [
        item.table for item in build_corpus("ckg", n_tables=6, seed=3)
    ]


def test_registry_is_nonempty_and_sorted():
    names = mutator_names()
    assert len(names) >= 15
    assert names == sorted(names)
    for spec in get_mutators():
        assert spec.kind in ("grid", "text")
        assert spec.relation in ("equal", "robust")
        assert spec.description


def test_unknown_mutator_rejected():
    with pytest.raises(ValueError, match="unknown mutator"):
        get_mutators(["no-such-mutator"])


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_mutator(
            "transpose", kind="grid", relation="robust", description="dup"
        )(lambda table, rng: None)


def test_bad_kind_and_relation_rejected():
    with pytest.raises(ValueError, match="kind"):
        register_mutator(
            "x-kind", kind="nope", relation="robust", description="d"
        )
    with pytest.raises(ValueError, match="relation"):
        register_mutator(
            "x-rel", kind="grid", relation="nope", description="d"
        )


def test_every_mutator_is_deterministic(sample_tables):
    """Same (table, rng seed) => identical mutant, for every mutator."""
    for spec in get_mutators():
        for t_idx, table in enumerate(sample_tables):
            seed = np.random.SeedSequence((17, t_idx))
            a = apply_mutator(spec, table, np.random.default_rng(seed))
            b = apply_mutator(spec, table, np.random.default_rng(seed))
            if a is None:
                assert b is None, spec.name
                continue
            assert b is not None, spec.name
            assert a.kind == b.kind, spec.name
            if a.kind == "grid":
                assert a.table.rows == b.table.rows, spec.name
            else:
                assert a.text == b.text, spec.name
                assert a.suffix == b.suffix, spec.name


def test_grid_mutants_are_wellformed_tables(sample_tables):
    """Grid mutants come back as rectangular, non-degenerate Tables."""
    rng = np.random.default_rng(5)
    for spec in get_mutators():
        if spec.kind != "grid":
            continue
        for table in sample_tables:
            mutant = apply_mutator(spec, table, rng)
            if mutant is None:
                continue
            assert isinstance(mutant.table, Table), spec.name
            widths = {len(row) for row in mutant.table.rows}
            assert len(widths) <= 1, f"{spec.name}: ragged Table leaked"


def test_equal_mutants_roundtrip_the_exact_grid(sample_tables):
    """relation="equal" means re-parsing recovers the identical grid —
    the precondition for the fuzzer's label-flip claim."""
    rng = np.random.default_rng(11)
    for spec in get_mutators():
        if spec.relation != "equal":
            continue
        for table in sample_tables:
            mutant = apply_mutator(spec, table, rng)
            if mutant is None:
                continue
            parsed = table_from_text(
                mutant.text, suffix=mutant.suffix, name=table.name
            )
            assert parsed.rows == table.rows, (
                f"{spec.name} round trip altered the grid"
            )


def test_robust_text_mutants_parse_or_reject_cleanly(sample_tables):
    """Text mutants either parse or raise ValueError — never anything
    else (the ingestion clean-rejection contract)."""
    rng = np.random.default_rng(23)
    for spec in get_mutators():
        if spec.kind != "text" or spec.relation != "robust":
            continue
        for table in sample_tables:
            for _ in range(3):  # a few draws per (mutator, table)
                mutant = apply_mutator(spec, table, rng)
                if mutant is None:
                    continue
                try:
                    table_from_text(mutant.text, suffix=mutant.suffix)
                except ValueError:
                    pass  # clean rejection is allowed for robust mutants


def test_markdown_roundtrip_declines_unrepresentable_rows():
    [spec] = get_mutators(["markdown-roundtrip"])
    rng = np.random.default_rng(0)
    separator_lookalike = Table([["a", "b"], ["---", "----"], ["c", "d"]])
    assert apply_mutator(spec, separator_lookalike, rng) is None
    all_blank = Table([["a", "b"], ["", ""]])
    assert apply_mutator(spec, all_blank, rng) is None


def test_mutant_kind_property():
    assert Mutant(table=Table([["a"]])).kind == "grid"
    assert Mutant(text="a,b", suffix=".csv").kind == "text"
