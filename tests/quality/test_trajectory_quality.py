"""Quality keys in the benchmark trajectory: parsing and gating."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "record_trajectory",
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "record_trajectory.py",
)
assert _SPEC is not None and _SPEC.loader is not None
record_trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(record_trajectory)


def _fuzz_report(tmp_path, **counts) -> Path:
    payload = {
        "kind": "fuzz-report",
        "counts": {
            "ok": 197, "skip": 0, "crash": 0,
            "divergence": 0, "flip": 0, **counts,
        },
    }
    path = tmp_path / "fuzz.json"
    path.write_text(json.dumps(payload))
    return path


def _ablation_report(tmp_path, hmd1=0.79) -> Path:
    payload = {
        "kind": "ablation-report",
        "summary": {
            "baseline_hmd1": hmd1,
            "worst_component": "contrastive",
            "worst_delta_hmd1": -0.2,
        },
    }
    path = tmp_path / "ablation.json"
    path.write_text(json.dumps(payload))
    return path


def test_quality_entry_folds_both_reports(tmp_path):
    entry = record_trajectory.quality_entry(
        _fuzz_report(tmp_path, crash=1, flip=2),
        _ablation_report(tmp_path, hmd1=0.81234),
    )
    assert entry["fuzz_cases"] == 200
    assert entry["fuzz_crashes"] == 1
    assert entry["fuzz_divergences"] == 0
    assert entry["fuzz_flips"] == 2
    assert entry["ablation_hmd1"] == 0.8123
    assert entry["ablation_worst_component"] == "contrastive"


def test_quality_entry_sides_are_optional(tmp_path):
    entry = record_trajectory.quality_entry(None, _ablation_report(tmp_path))
    assert "fuzz_cases" not in entry
    assert entry["ablation_hmd1"] == 0.79
    assert record_trajectory.quality_entry(None, None) == {}


def test_quality_entry_rejects_wrong_kind(tmp_path):
    with pytest.raises(SystemExit):
        record_trajectory.quality_entry(
            _ablation_report(tmp_path), None  # ablation where fuzz expected
        )


def _baseline(tmp_path) -> Path:
    path = tmp_path / "BENCH_baseline.json"
    path.write_text(json.dumps({
        "commit": "abc123", "ablation_hmd1": 0.7917,
    }))
    return path


def test_check_passes_clean_quality_entry(tmp_path, capsys):
    entry = record_trajectory.quality_entry(
        _fuzz_report(tmp_path), _ablation_report(tmp_path)
    )
    assert record_trajectory.check_regression(entry, _baseline(tmp_path)) == 0
    err = capsys.readouterr().err
    assert "fuzz OK" in err
    assert "ablation accuracy OK" in err


def test_check_fails_on_fuzz_crashes(tmp_path, capsys):
    entry = record_trajectory.quality_entry(
        _fuzz_report(tmp_path, crash=3), _ablation_report(tmp_path)
    )
    assert record_trajectory.check_regression(entry, _baseline(tmp_path)) == 1
    assert "QUALITY REGRESSION" in capsys.readouterr().err


def test_check_fails_on_ablation_accuracy_drop(tmp_path, capsys):
    entry = record_trajectory.quality_entry(
        None, _ablation_report(tmp_path, hmd1=0.50)
    )
    assert record_trajectory.check_regression(entry, _baseline(tmp_path)) == 1
    assert "ablation_hmd1" in capsys.readouterr().err


def test_quality_only_entry_skips_perf_gates(tmp_path, capsys):
    """A quality-only entry has no throughput keys; the perf gates must
    stay silent instead of crashing or failing."""
    entry = record_trajectory.quality_entry(_fuzz_report(tmp_path), None)
    assert record_trajectory.check_regression(entry, _baseline(tmp_path)) == 0
    err = capsys.readouterr().err
    assert "PERF REGRESSION" not in err
    assert "throughput OK" not in err
