"""Shared fixtures for the quality-harness tests.

The fitted harness is session-scoped: one small hashed-backend fit
serves every test that needs to classify, which keeps the whole
directory in the tier-1 time budget.
"""

import pytest

from repro.quality.fuzzer import FuzzConfig, build_harness


SMALL_CONFIG = FuzzConfig(
    budget=30, seed=9, dataset="ckg", n_tables=24, n_train=40
)


@pytest.fixture(scope="session")
def fuzz_config() -> FuzzConfig:
    return SMALL_CONFIG


@pytest.fixture(scope="session")
def harness(fuzz_config):
    return build_harness(fuzz_config, "hashed")
