"""Delta-debugging minimizer tests."""

from repro.quality.minimize import ddmin, minimize_table, minimize_text
from repro.tables.model import Table


def test_ddmin_finds_single_failing_atom():
    items = list(range(50))
    result = ddmin(items, lambda xs: 37 in xs)
    assert result == [37]


def test_ddmin_finds_failing_pair():
    items = list(range(40))
    result = ddmin(items, lambda xs: 3 in xs and 31 in xs)
    assert sorted(result) == [3, 31]


def test_ddmin_flaky_input_comes_back_unchanged():
    items = [1, 2, 3]
    assert ddmin(items, lambda xs: False) == items


def test_ddmin_respects_check_budget():
    checks = []

    def predicate(xs):
        checks.append(1)
        return 0 in xs

    ddmin(list(range(1000)), predicate, max_checks=25)
    assert len(checks) <= 25


def test_minimize_table_shrinks_rows_and_columns():
    table = Table(
        [[f"r{i}c{j}" for j in range(6)] for i in range(8)], name="t"
    )

    def fails(candidate: Table) -> bool:
        return any("r4c2" in cell for row in candidate.rows for cell in row)

    minimized = minimize_table(table, fails)
    assert minimized.n_rows == 1
    assert minimized.n_cols <= 2  # the trigger column (pairs allowed)
    assert any(
        "r4c2" in cell for row in minimized.rows for cell in row
    )
    assert minimized.name == "t"


def test_minimize_table_truncates_long_cells():
    table = Table([["x" * 100, "trigger-cell-y"]])

    def fails(candidate: Table) -> bool:
        return any(
            "trigger" in cell for row in candidate.rows for cell in row
        )

    minimized = minimize_table(table, fails)
    for row in minimized.rows:
        for cell in row:
            if "trigger" not in cell:
                assert len(cell) <= 8


def test_minimize_text_linewise_then_charwise():
    text = "\n".join(f"line {i}" for i in range(30)) + "\nBOOM\nmore"
    minimized = minimize_text(text, lambda s: "BOOM" in s, max_checks=400)
    assert "BOOM" in minimized
    assert len(minimized) <= len("BOOM") + 2


def test_minimize_text_flaky_input_unchanged():
    assert minimize_text("abc", lambda s: False) == "abc"
