"""CLI contract tests for ``repro fuzz`` and ``repro ablate``."""

import json

import pytest

from repro.cli import main


def test_fuzz_clean_campaign_exits_zero(tmp_path, capsys):
    report_path = tmp_path / "fuzz.json"
    code = main([
        "fuzz", "--budget", "8", "--seed", "3", "--report", str(report_path),
    ])
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["kind"] == "fuzz-report"
    assert len(payload["cases"]) == 8
    out = capsys.readouterr().out
    assert "8 cases" in out


def test_fuzz_list_mutators(capsys):
    assert main(["fuzz", "--list-mutators"]) == 0
    out = capsys.readouterr().out
    assert "transpose" in out
    assert "html-spans" in out


def test_fuzz_unknown_mutator_is_usage_error(capsys):
    assert main(["fuzz", "--budget", "2", "--mutators", "nope"]) == 2
    assert "unknown mutator" in capsys.readouterr().err


def test_fuzz_mutator_subset_runs_only_those(tmp_path):
    report_path = tmp_path / "fuzz.json"
    code = main([
        "fuzz", "--budget", "6", "--seed", "1",
        "--mutators", "transpose,csv-roundtrip",
        "--report", str(report_path),
    ])
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert {c["mutator"] for c in payload["cases"]} <= {
        "transpose", "csv-roundtrip",
    }


def test_fuzz_bank_flag_writes_fixtures_dir(tmp_path, capsys):
    bank = tmp_path / "bank"
    code = main([
        "fuzz", "--budget", "4", "--seed", "3", "--bank", str(bank),
    ])
    assert code == 0  # clean campaign: nothing to bank
    out = capsys.readouterr().out
    assert "banked 0 new fixture(s)" in out


def test_ablate_list_components(capsys):
    assert main(["ablate", "--list-components"]) == 0
    out = capsys.readouterr().out
    assert "contrastive" in out
    assert "fused" in out


def test_ablate_config_and_quick_conflict(capsys):
    assert main(["ablate", "--config", "x.json", "--quick"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_ablate_missing_config_file(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    assert main(["ablate", "--config", str(missing)]) == 2


def test_ablate_with_config_writes_report(tmp_path, capsys):
    config_path = tmp_path / "ablation.json"
    config_path.write_text(json.dumps({
        "backends": ["hashed"],
        "components": ["depth"],
        "n_train": 24,
        "n_eval": 10,
        "epochs": 1,
    }))
    report_path = tmp_path / "impact.json"
    code = main([
        "ablate", "--config", str(config_path),
        "--report", str(report_path),
    ])
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["kind"] == "ablation-report"
    assert {r["component"] for r in payload["results"]} == {
        "baseline", "depth",
    }


@pytest.mark.parametrize("verb", ["fuzz", "ablate"])
def test_trace_out_writes_spans(tmp_path, verb, capsys):
    trace = tmp_path / "trace.jsonl"
    if verb == "fuzz":
        args = ["fuzz", "--budget", "3", "--seed", "1"]
    else:
        config = tmp_path / "c.json"
        config.write_text(json.dumps({
            "backends": ["hashed"], "components": ["depth"],
            "n_train": 24, "n_eval": 8, "epochs": 1,
        }))
        args = ["ablate", "--config", str(config)]
    assert main(args + ["--trace-out", str(trace)]) == 0
    assert trace.exists()
    assert trace.read_text().strip()
