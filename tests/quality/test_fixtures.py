"""Banked-fixture regression replay: every fixture must stay fixed.

This is the test the banking workflow exists for — ``repro fuzz
--bank`` writes a minimized reproducer, and from then on this module
fails CI if the captured bug ever comes back.
"""

from pathlib import Path

import pytest

from repro.quality.bank import (
    bank_case,
    fixture_path,
    load_fixtures,
    replay_fixture,
)
from repro.quality.fuzzer import FuzzCase

FIXTURES_DIR = Path(__file__).parent / "fixtures"


def test_fixture_dir_has_the_ingestion_bug_fixtures():
    fixtures = load_fixtures(FIXTURES_DIR)
    assert len(fixtures) >= 3  # the PR-9 ingestion bugs at minimum
    assert all(f["repro"] for f in fixtures)


@pytest.mark.parametrize(
    "fixture",
    load_fixtures(FIXTURES_DIR),
    ids=lambda f: Path(f["path"]).stem,
)
def test_banked_fixture_replays_clean(fixture, harness):
    needs_harness = fixture["repro"]["kind"] in ("table", "roundtrip")
    verdict = replay_fixture(
        fixture, harness if needs_harness else None
    )
    assert verdict == "ok", (
        f"banked bug regressed ({fixture['path']}): {fixture['detail']}"
    )


def _crash_case() -> FuzzCase:
    return FuzzCase(
        index=3, mutator="json-roundtrip", table_name="t",
        verdict="crash", detail="d",
        repro={"kind": "text", "suffix": ".json", "text": "{",
               "exception": "ValueError"},
    )


def test_bank_case_dedups_by_content(tmp_path):
    case = _crash_case()
    first = bank_case(case, tmp_path, campaign_seed=1)
    assert first is not None and first.exists()
    assert bank_case(case, tmp_path, campaign_seed=1) is None  # dedup
    assert fixture_path(case, tmp_path) == first
    [fixture] = load_fixtures(tmp_path)
    assert fixture["campaign_seed"] == 1
    assert fixture["repro"]["text"] == "{"


def test_bank_case_without_repro_rejected(tmp_path):
    case = FuzzCase(
        index=0, mutator="m", table_name="t", verdict="crash"
    )
    with pytest.raises(ValueError, match="no reproducer"):
        bank_case(case, tmp_path)


def test_replay_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fixture kind"):
        replay_fixture({"repro": {"kind": "nope"}})


def test_replay_table_kind_needs_harness():
    with pytest.raises(ValueError, match="needs a harness"):
        replay_fixture({"repro": {"kind": "table", "rows": [["a"]]}})


def test_load_fixtures_missing_dir_is_empty(tmp_path):
    assert load_fixtures(tmp_path / "nope") == []
