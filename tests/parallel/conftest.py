"""Fixtures for the multiprocess subsystem tests.

Worker processes are expensive to spawn (each re-imports numpy/scipy),
so the pool fixtures are module scoped and the corpora stay small.
"""

from __future__ import annotations

import pytest

from repro.core.persistence import save_pipeline_dir
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.tables.csvio import table_to_csv
from repro.tables.model import Table


def make_table(i: int) -> Table:
    rows = [["region", "year", "count"]] + [
        [f"area {j}", str(2000 + j), str((i * 7 + j * 3) % 97)]
        for j in range(4)
    ]
    return Table(rows=rows, name=f"t{i:03d}")


@pytest.fixture(scope="session")
def small_corpus() -> list[Table]:
    return [make_table(i) for i in range(12)]


@pytest.fixture(scope="session")
def fitted_hashed(small_corpus) -> MetadataPipeline:
    config = PipelineConfig(embedding="hashed", bootstrap="first_level")
    return MetadataPipeline(config).fit(small_corpus)


@pytest.fixture(scope="session")
def model_dir(fitted_hashed, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "model"
    return save_pipeline_dir(fitted_hashed, path)


@pytest.fixture(scope="session")
def table_files(small_corpus, tmp_path_factory) -> list[str]:
    root = tmp_path_factory.mktemp("tables")
    out = []
    for table in small_corpus:
        path = root / f"{table.name}.csv"
        path.write_text(table_to_csv(table))
        out.append(str(path))
    return out
