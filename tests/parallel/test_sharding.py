"""Tests for the contiguous sharding and seed-salting conventions."""

from __future__ import annotations

import pytest

from repro.parallel.sharding import shard_seed, split_shards


class TestSplitShards:
    @pytest.mark.parametrize("n_items", [1, 2, 5, 12, 100])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 16])
    def test_concat_equals_original(self, n_items, n_shards):
        items = list(range(n_items))
        shards = split_shards(items, n_shards)
        assert [x for shard in shards for x in shard] == items

    @pytest.mark.parametrize("n_items", [1, 5, 12, 100])
    @pytest.mark.parametrize("n_shards", [1, 3, 16])
    def test_no_empty_shards_and_near_even(self, n_items, n_shards):
        shards = split_shards(list(range(n_items)), n_shards)
        assert len(shards) == min(n_shards, n_items)
        sizes = [len(s) for s in shards]
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert split_shards([], 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            split_shards([1], 0)


class TestShardSeed:
    def test_deterministic(self):
        assert shard_seed(7, 3) == shard_seed(7, 3)

    def test_distinct_per_shard_and_seed(self):
        seeds = {shard_seed(s, i) for s in range(4) for i in range(16)}
        assert len(seeds) == 64

    def test_golden_values(self):
        # Pinned: these feed worker RNG streams, so a silent change to
        # the salting scheme would alter "deterministic" fit outputs.
        assert shard_seed(0, 0) == 2968811710
        assert shard_seed(0, 1) == 3964924996
        assert shard_seed(1, 0) == 1835504127
