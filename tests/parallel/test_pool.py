"""Tests for ShardedPool: sharded bulk runs, the serve interface,
memmap sharing, and failure handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import ShardedPool, WorkerPoolError, cpu_worker_default
from repro.parallel import _worker
from tests.parallel.conftest import make_table


@pytest.fixture(scope="module")
def pool(model_dir, tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    with ShardedPool(
        {"m": model_dir}, procs=2, default="m", trace_dir=trace_dir
    ) as p:
        yield p


class TestCpuWorkerDefault:
    def test_bounded(self):
        n = cpu_worker_default()
        assert 1 <= n <= 8

    def test_custom_bounds(self):
        assert cpu_worker_default(floor=3, ceiling=3) == 3


class TestMapPaths:
    def test_ordered_records(self, pool, table_files, small_corpus):
        records = list(pool.map_paths(table_files))
        assert [r["source"] for r in records] == table_files
        assert [r["name"] for r in records] == [t.name for t in small_corpus]
        assert all(r["model"] == "m" for r in records)

    def test_unordered_same_set(self, pool, table_files):
        def normalize(records):
            # timing and worker-local cache hits vary run to run
            return sorted(
                (
                    {k: v for k, v in r.items() if k not in ("seconds", "cached")}
                    for r in records
                ),
                key=lambda r: r["source"],
            )

        ordered = list(pool.map_paths(table_files))
        unordered = list(pool.map_paths(table_files, ordered=False))
        assert normalize(ordered) == normalize(unordered)

    def test_per_file_error_isolation(self, pool, table_files, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        records = list(pool.map_paths([*table_files[:2], str(bad)]))
        assert len(records) == 3
        assert "error" in records[2] and records[2]["source"] == str(bad)
        assert "error" not in records[0]

    def test_stage_totals_merged(self, pool, tmp_path):
        # Fresh files: cache hits would skip classify() and emit no
        # stage events, so reusing the shared fixture paths is flaky.
        from repro.tables.csvio import table_to_csv

        fresh = []
        for i in range(4):
            path = tmp_path / f"fresh{i}.csv"
            path.write_text(table_to_csv(make_table(60 + i)))
            fresh.append(str(path))
        totals: dict[str, list[float]] = {}
        list(pool.map_paths(fresh, stage_totals=totals))
        total, count = totals["classify"]
        assert count >= len(fresh)
        assert total > 0.0

    def test_unknown_model_is_a_caller_error(self, pool, table_files):
        # A bad model name is a configuration mistake, not bad data:
        # it fails the run instead of emitting N per-file error records.
        with pytest.raises(KeyError, match="nope"):
            list(pool.map_paths(table_files[:2], model="nope"))


class TestServeInterface:
    def test_submit_and_map(self, pool):
        record = pool.submit(("m", make_table(40))).result()
        assert record["name"] == "t040"
        records = pool.map([("m", make_table(41)), ("", make_table(42))])
        assert [r["name"] for r in records] == ["t041", "t042"]

    def test_item_error_becomes_future_exception(self, pool):
        future = pool.submit(("missing-model", make_table(1)))
        with pytest.raises(RuntimeError, match="missing-model"):
            future.result()

    def test_drain_stage_totals(self, pool):
        pool.map([("m", make_table(50))])
        totals = pool.drain_stage_totals()
        assert totals["classify"][1] >= 1
        # draining resets the accumulator
        followup = pool.drain_stage_totals()
        assert followup == {}


class TestMemmapSharing:
    def test_workers_hold_memmap_views(self, pool):
        reports = pool.probe_workers()
        assert len(reports) == pool.procs
        for report in reports:
            assert report["m"]["meta_ref_memmap"] is True
            assert report["m"]["data_ref_memmap"] is True

    def test_worker_spans_carry_pid_tid(self, pool, table_files):
        list(pool.map_paths(table_files[:3]))
        spans = pool.worker_spans()
        assert spans, "tracing was enabled; spans expected"
        assert all(s.thread_id > 0 for s in spans)
        assert all(s.thread_name.startswith("worker-") for s in spans)


class TestFailureModes:
    def test_worker_crash_raises_pool_error(self, model_dir):
        with ShardedPool({"m": model_dir}, procs=1) as crash_pool:
            crash_pool._executor.submit(_worker.crash_worker)
            with pytest.raises(WorkerPoolError):
                list(crash_pool.map_paths(["whatever.csv"]))

    def test_rejects_empty_specs(self):
        with pytest.raises(ValueError):
            ShardedPool({})

    def test_rejects_unknown_default(self, model_dir):
        with pytest.raises(ValueError):
            ShardedPool({"m": model_dir}, default="other")

    def test_shutdown_idempotent(self, model_dir):
        p = ShardedPool({"m": model_dir}, procs=1)
        p.shutdown()
        p.shutdown()


class TestChunking:
    def test_chunk_count_covers_all_workers(self, pool):
        assert pool._chunk_count(0) == 1
        assert pool._chunk_count(1) == 1
        assert pool._chunk_count(100) >= pool.procs
        # chunk-size bound: 100 items / 16 per chunk -> ceil = 7
        assert pool._chunk_count(100) == 7


class TestNumpyPayloads:
    def test_npz_store_also_works(self, fitted_hashed, tmp_path):
        from repro.core.persistence import save_pipeline

        npz = save_pipeline(fitted_hashed, tmp_path / "model.npz")
        with ShardedPool({"z": npz}, procs=1) as p:
            report = p.probe_workers()[0]
            # npz archives decompress to plain in-memory arrays
            assert report["z"]["meta_ref_memmap"] is False
            record = p.submit(("z", make_table(7))).result()
            assert isinstance(record["hmd_depth"], int)
            assert isinstance(record["row_labels"], list)
            assert not isinstance(record["row_labels"][0], np.ndarray)
