"""Tests for per-worker trace files and the merged timeline."""

from __future__ import annotations

import json

from repro import obs
from repro.parallel.traces import merge_traces, read_worker_traces


def _span_record(pid: int, name: str, start: float, end: float) -> str:
    span = obs.Span(
        name=name, trace_id="t" * 32, span_id=int(start * 1000) + pid,
        parent_id=None, start=start, end=end,
    )
    return json.dumps({"pid": pid, **obs.span_to_dict(span)})


class TestReadWorkerTraces:
    def test_pid_becomes_thread_identity(self, tmp_path):
        (tmp_path / "trace-101.jsonl").write_text(
            _span_record(101, "table", 1.0, 2.0) + "\n"
        )
        (tmp_path / "trace-202.jsonl").write_text(
            _span_record(202, "parse", 1.5, 1.8) + "\n"
        )
        spans = read_worker_traces(tmp_path)
        by_name = {s.name: s for s in spans}
        assert by_name["table"].thread_id == 101
        assert by_name["table"].thread_name == "worker-101"
        assert by_name["parse"].thread_id == 202

    def test_bad_lines_skipped(self, tmp_path):
        path = tmp_path / "trace-7.jsonl"
        path.write_text(
            "not json\n"
            + _span_record(7, "ok", 0.0, 1.0) + "\n"
            + '{"pid": 7, "missing": "fields"}\n'
        )
        spans = read_worker_traces(tmp_path)
        assert [s.name for s in spans] == ["ok"]

    def test_empty_dir(self, tmp_path):
        assert read_worker_traces(tmp_path) == []


class TestMergeTraces:
    def test_sorted_global_timeline(self, tmp_path):
        (tmp_path / "trace-11.jsonl").write_text(
            _span_record(11, "late", 5.0, 6.0) + "\n"
        )
        parent = obs.Span(
            name="early", trace_id="p" * 32, span_id=1,
            parent_id=None, start=0.5, end=7.0,
        )
        merged = merge_traces([parent], tmp_path)
        assert [s.name for s in merged] == ["early", "late"]

    def test_chrome_export_keeps_worker_tids(self, tmp_path):
        (tmp_path / "trace-11.jsonl").write_text(
            _span_record(11, "a", 1.0, 2.0) + "\n"
        )
        (tmp_path / "trace-22.jsonl").write_text(
            _span_record(22, "b", 1.2, 1.9) + "\n"
        )
        merged = merge_traces([], tmp_path)
        events = obs.chrome_trace_events(merged)
        tids = {e["tid"] for e in events}
        assert tids == {11, 22}
