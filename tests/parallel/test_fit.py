"""parallel_fit must be bit-identical to serial fit, for any procs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.embeddings.ppmi import PpmiConfig
from repro.embeddings.word2vec import Word2VecConfig
from repro.parallel import parallel_fit
from tests.parallel.conftest import make_table

CONFIGS = {
    "hashed": PipelineConfig(
        embedding="hashed", bootstrap="first_level", n_pairs=100
    ),
    "ppmi": PipelineConfig(
        embedding="ppmi",
        ppmi=PpmiConfig(dim=16, min_count=1),
        bootstrap="first_level",
        n_pairs=100,
    ),
    "word2vec": PipelineConfig(
        embedding="word2vec",
        word2vec=Word2VecConfig(dim=16, epochs=1, seed=0),
        bootstrap="first_level",
        n_pairs=100,
    ),
}


def _assert_identical(a: MetadataPipeline, b: MetadataPipeline) -> None:
    for attr in ("row_centroids", "col_centroids"):
        left, right = getattr(a, attr), getattr(b, attr)
        assert left.mde == right.mde, attr
        assert left.de == right.de, attr
        assert left.mde_de == right.mde_de, attr
        assert left.level_stats == right.level_stats, attr
        assert left.n_tables == right.n_tables, attr
        assert np.array_equal(
            np.asarray(left.meta_ref), np.asarray(right.meta_ref)
        ), attr
        assert np.array_equal(
            np.asarray(left.data_ref), np.asarray(right.data_ref)
        ), attr
    probe = make_table(99)
    assert a.classify(probe) == b.classify(probe)


class TestSerialEquivalence:
    @pytest.mark.parametrize("backend", sorted(CONFIGS))
    def test_matches_serial_fit(self, backend, small_corpus):
        config = CONFIGS[backend]
        serial = MetadataPipeline(config).fit(small_corpus)
        parallel = parallel_fit(config, small_corpus, procs=2)
        _assert_identical(serial, parallel)

    def test_worker_count_invariant(self, small_corpus):
        # Contiguous order-preserving shards + ordered merges: the
        # result may not depend on how many workers split the corpus.
        config = CONFIGS["ppmi"]
        one = parallel_fit(config, small_corpus, procs=1)
        three = parallel_fit(config, small_corpus, procs=3)
        _assert_identical(one, three)

    def test_deterministic_across_runs(self, small_corpus):
        config = CONFIGS["hashed"]
        first = parallel_fit(config, small_corpus, procs=2)
        second = parallel_fit(config, small_corpus, procs=2)
        _assert_identical(first, second)


class TestFitSurface:
    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            parallel_fit(CONFIGS["hashed"], [], procs=1)

    def test_rejects_bad_procs(self, small_corpus):
        with pytest.raises(ValueError):
            parallel_fit(CONFIGS["hashed"], small_corpus, procs=0)

    def test_fit_report_and_classifier_present(self, small_corpus):
        pipeline = parallel_fit(CONFIGS["hashed"], small_corpus, procs=2)
        assert pipeline.is_fitted
        assert pipeline.fit_report is not None
        assert pipeline.fit_report.n_tables == len(small_corpus)
        assert pipeline.fit_report.total_seconds > 0.0

    def test_report_stage_breakdown(self, small_corpus):
        fitted = parallel_fit(CONFIGS["hashed"], small_corpus, procs=1)
        report = fitted.fit_report
        assert report.embedding_seconds >= 0.0
        assert report.bootstrap_seconds >= 0.0
        assert report.centroid_seconds >= 0.0
