"""Tests for angle primitives and AngleRange."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.angles import (
    AngleRange,
    angle_between,
    angle_matrix,
    angles_to,
    consecutive_angles,
    cosine_similarity,
    euclidean_distance,
    jaccard_similarity,
    walk_angles,
)

vectors = arrays(
    np.float64,
    shape=st.integers(min_value=1, max_value=8),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)


class TestCosine:
    def test_parallel(self):
        assert cosine_similarity([1, 0], [2, 0]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_opposite(self):
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_zero_vector_convention(self):
        assert cosine_similarity([0, 0], [1, 0]) == 0.0
        assert angle_between([0, 0], [1, 0]) == pytest.approx(90.0)

    def test_scale_invariance(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 1.0])
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(10 * a, 0.01 * b)
        )


class TestAngle:
    def test_degrees(self):
        assert angle_between([1, 0], [1, 1]) == pytest.approx(45.0)
        assert angle_between([1, 0], [0, 1]) == pytest.approx(90.0)
        assert angle_between([1, 0], [-1, 0]) == pytest.approx(180.0)

    @given(vectors)
    def test_self_angle_zero_or_ninety(self, vec):
        angle = angle_between(vec, vec)
        # The zero-vector convention triggers on the norm *product*.
        if np.linalg.norm(vec) ** 2 < 1e-12:
            assert angle == pytest.approx(90.0)
        else:
            assert angle == pytest.approx(0.0, abs=1e-3)

    @given(vectors, st.data())
    def test_symmetry(self, a, data):
        b = data.draw(
            arrays(
                np.float64,
                shape=a.shape,
                elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
            )
        )
        assert angle_between(a, b) == pytest.approx(angle_between(b, a))

    @given(vectors, st.data())
    def test_bounds(self, a, data):
        b = data.draw(
            arrays(
                np.float64,
                shape=a.shape,
                elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
            )
        )
        assert 0.0 <= angle_between(a, b) <= 180.0


class TestAlternatives:
    def test_euclidean(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_euclidean_magnitude_sensitive(self):
        """The paper's argument against it: same direction, far apart."""
        assert euclidean_distance([1, 0], [100, 0]) > 90
        assert angle_between([1, 0], [100, 0]) == pytest.approx(0.0)

    def test_jaccard(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard_similarity([], []) == 1.0
        assert jaccard_similarity({"a"}, set()) == 0.0


class TestAngleMatrix:
    def test_matches_pairwise(self):
        levels = np.array([[1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        matrix = angle_matrix(levels)
        for i in range(3):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    angle_between(levels[i], levels[j]), abs=1e-4
                )

    def test_zero_rows_get_ninety(self):
        levels = np.array([[1.0, 0.0], [0.0, 0.0]])
        matrix = angle_matrix(levels)
        assert matrix[0, 1] == pytest.approx(90.0)
        assert matrix[1, 1] == pytest.approx(90.0)

    def test_diagonal_zero(self):
        levels = np.random.default_rng(0).normal(size=(4, 6))
        matrix = angle_matrix(levels)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-6)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            angle_matrix(np.zeros(3))


class TestAngleRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            AngleRange(50, 40)
        with pytest.raises(ValueError):
            AngleRange(-1, 40)
        with pytest.raises(ValueError):
            AngleRange(0, 200)

    def test_contains(self):
        r = AngleRange(10, 20)
        assert 10 in r and 15 in r and 20 in r
        assert 9.99 not in r and 20.01 not in r

    def test_midpoint_width(self):
        r = AngleRange(10, 30)
        assert r.midpoint == 20
        assert r.width == 20

    def test_distance_to(self):
        r = AngleRange(10, 20)
        assert r.distance_to(15) == 0.0
        assert r.distance_to(5) == 5.0
        assert r.distance_to(26) == 6.0

    def test_widened_clips(self):
        assert AngleRange(2, 178).widened(5) == AngleRange(0, 180)

    def test_from_samples_trimming(self):
        samples = [10.0] * 50 + [170.0]  # one outlier
        r = AngleRange.from_samples(samples, trim=0.05)
        assert r.hi < 170.0

    def test_from_samples_empty(self):
        with pytest.raises(ValueError):
            AngleRange.from_samples([])

    def test_from_samples_bad_trim(self):
        with pytest.raises(ValueError):
            AngleRange.from_samples([1.0], trim=0.6)

    def test_str(self):
        assert str(AngleRange(10.2, 20.7)) == "10 to 21"

    @given(st.lists(st.floats(min_value=0, max_value=180), min_size=1, max_size=40))
    def test_from_samples_contains_median(self, samples):
        r = AngleRange.from_samples(samples, trim=0.1)
        median = float(np.median(samples))
        assert r.lo - 1e-9 <= median <= r.hi + 1e-9


class TestBatchedAngles:
    """The batched helpers must match per-pair angle_between exactly."""

    def _levels(self, seed=0, n=6, d=8):
        rng = np.random.default_rng(seed)
        levels = rng.normal(size=(n, d))
        levels[2] = 0.0  # a blank level: 90-degree convention
        return levels

    def test_angles_to_matches_scalar(self):
        levels = self._levels()
        ref = np.ones(8)
        batched = angles_to(levels, ref)
        scalar = [angle_between(v, ref) for v in levels]
        np.testing.assert_allclose(batched, scalar, atol=1e-9)
        assert batched[2] == pytest.approx(90.0)

    def test_angles_to_zero_reference(self):
        np.testing.assert_allclose(
            angles_to(self._levels(), np.zeros(8)), 90.0
        )

    def test_angles_to_empty(self):
        assert angles_to(np.empty((0, 8)), np.ones(8)).shape == (0,)
        with pytest.raises(ValueError):
            angles_to(np.ones(8), np.ones(8))

    def test_consecutive_matches_scalar(self):
        levels = self._levels(seed=1)
        batched = consecutive_angles(levels)
        scalar = [
            angle_between(levels[i], levels[i + 1])
            for i in range(len(levels) - 1)
        ]
        np.testing.assert_allclose(batched, scalar, atol=1e-9)

    def test_consecutive_short_inputs(self):
        assert consecutive_angles(np.empty((0, 4))).shape == (0,)
        assert consecutive_angles(np.ones((1, 4))).shape == (0,)

    def test_walk_angles_matches_components(self):
        levels = self._levels(seed=2)
        meta_ref = np.ones(8)
        data_ref = -np.ones(8)
        meta, data, deltas = walk_angles(levels, meta_ref, data_ref)
        np.testing.assert_allclose(meta, angles_to(levels, meta_ref), atol=1e-9)
        np.testing.assert_allclose(data, angles_to(levels, data_ref), atol=1e-9)
        np.testing.assert_allclose(
            deltas, consecutive_angles(levels), atol=1e-9
        )

    def test_walk_angles_degenerate(self):
        meta, data, deltas = walk_angles(
            np.empty((0, 4)), np.ones(4), np.ones(4)
        )
        assert meta.shape == data.shape == deltas.shape == (0,)
        meta, data, deltas = walk_angles(
            np.ones((1, 4)), np.zeros(4), np.ones(4)
        )
        assert meta[0] == pytest.approx(90.0)
        assert data[0] == pytest.approx(0.0)
        assert deltas.shape == (0,)
