"""Tests for the Siamese contrastive projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.angles import angle_between
from repro.core.contrastive import (
    ContrastiveConfig,
    ContrastiveProjection,
    PairBatch,
    build_pairs,
)


def _clusters(seed: int = 0, n: int = 30) -> tuple[list, list]:
    rng = np.random.default_rng(seed)
    meta_dir = rng.normal(size=8)
    data_dir = rng.normal(size=8)
    meta = [meta_dir + 0.3 * rng.normal(size=8) for _ in range(n)]
    data = [data_dir + 0.3 * rng.normal(size=8) for _ in range(n)]
    return meta, data


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            ContrastiveConfig(margin=1.5)
        with pytest.raises(ValueError):
            ContrastiveConfig(epochs=0)


class TestBuildPairs:
    def test_balanced_labels(self):
        meta, data = _clusters()
        pairs = build_pairs(meta, data, n_pairs=100, seed=1)
        assert len(pairs) == 100
        assert pairs.labels.sum() == 50

    def test_deterministic(self):
        meta, data = _clusters()
        a = build_pairs(meta, data, n_pairs=40, seed=2)
        b = build_pairs(meta, data, n_pairs=40, seed=2)
        np.testing.assert_allclose(a.left, b.left)
        np.testing.assert_allclose(a.labels, b.labels)

    def test_needs_two_of_each(self):
        meta, data = _clusters()
        with pytest.raises(ValueError):
            build_pairs(meta[:1], data, n_pairs=10)
        with pytest.raises(ValueError):
            build_pairs(meta, data[:1], n_pairs=10)

    def test_pair_batch_validation(self):
        with pytest.raises(ValueError):
            PairBatch(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros(2))


class TestProjection:
    def test_identity_init_near_identity(self):
        projection = ContrastiveProjection(6)
        np.testing.assert_allclose(projection.weights, np.eye(6), atol=0.05)

    def test_out_dim(self):
        config = ContrastiveConfig(out_dim=4)
        projection = ContrastiveProjection(8, config)
        assert projection.transform(np.zeros(8)).shape == (4,)

    def test_transform_shapes(self):
        projection = ContrastiveProjection(8)
        assert projection.transform(np.zeros(8)).shape == (8,)
        assert projection.transform(np.zeros((3, 8))).shape == (3, 8)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ContrastiveProjection(0)

    def test_loss_decreases(self):
        meta, data = _clusters()
        pairs = build_pairs(meta, data, n_pairs=300, seed=3)
        config = ContrastiveConfig(epochs=15, learning_rate=0.01)
        projection = ContrastiveProjection(8, config).fit(pairs)
        history = projection.loss_history
        assert len(history) == 15
        assert history[-1] < history[0]

    def test_training_improves_separation(self):
        """After training, the metadata-data angle gap widens."""
        meta, data = _clusters(seed=5)
        pairs = build_pairs(meta, data, n_pairs=400, seed=5)
        config = ContrastiveConfig(epochs=20, learning_rate=0.02, margin=0.0)
        projection = ContrastiveProjection(8, config).fit(pairs)

        def gap(transform):
            pos = np.mean(
                [angle_between(transform(meta[i]), transform(meta[i + 1]))
                 for i in range(10)]
            )
            neg = np.mean(
                [angle_between(transform(meta[i]), transform(data[i]))
                 for i in range(10)]
            )
            return neg - pos

        identity_gap = gap(lambda v: v)
        trained_gap = gap(projection.transform)
        assert trained_gap > identity_gap

    def test_deterministic_training(self):
        meta, data = _clusters()
        pairs = build_pairs(meta, data, n_pairs=100, seed=1)
        a = ContrastiveProjection(8, ContrastiveConfig(epochs=3)).fit(pairs)
        b = ContrastiveProjection(8, ContrastiveConfig(epochs=3)).fit(pairs)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_gradient_matches_numeric(self):
        """Hand-derived cosine-loss gradient vs finite differences."""
        rng = np.random.default_rng(7)
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(4, 5))
        y = np.array([1.0, 0.0, 1.0, 0.0])
        projection = ContrastiveProjection(5, ContrastiveConfig(seed=7))
        _, grad = projection._loss_and_grad(a, b, y)

        eps = 1e-6
        numeric = np.zeros_like(projection.weights)
        for i in range(projection.weights.shape[0]):
            for j in range(projection.weights.shape[1]):
                projection.weights[i, j] += eps
                up, _ = projection._loss_and_grad(a, b, y)
                projection.weights[i, j] -= 2 * eps
                down, _ = projection._loss_and_grad(a, b, y)
                projection.weights[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)
