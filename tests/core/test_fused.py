"""Fused corpus-classification tests (:mod:`repro.core.fused`).

The contract: for every embedding backend and every table — including
the degenerate shapes — ``classify_corpus`` through the fused plane
must produce labels *byte-identical* to the per-table vectorized path
and to the scalar path; int8-quantized token matrices stay within a
documented tolerance of the float32 aggregates.  The pack/aggregate
internals get their own unit tests (offset bookkeeping, segment sums,
fragment memoization, local-vocabulary fallback).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import fused
from repro.core.aggregate import AggregationConfig, aggregate_cols, aggregate_rows
from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.core.fused import (
    CorpusPack,
    _indexed_segment_sum,
    classify_corpus,
    fused_level_matrices,
    pack_corpus,
    token_matrix,
)
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.embeddings.contextual import ContextualConfig
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.embeddings.ppmi import PpmiConfig
from repro.embeddings.word2vec import Word2VecConfig
from repro.tables.model import Table

from tests.core.test_degenerate import DEGENERATE_TABLES

BACKENDS = ("hashed", "word2vec", "ppmi", "contextual")


@pytest.fixture(scope="module")
def backend_pipelines(ckg_train) -> dict[str, MetadataPipeline]:
    """One small fitted pipeline per embedding backend."""
    train = list(ckg_train[:16])
    configs = {
        "hashed": PipelineConfig(
            embedding="hashed", hashed_dim=32, n_pairs=50,
            use_contrastive=False,
        ),
        "word2vec": PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=16, epochs=1, seed=0),
            n_pairs=50,
            use_contrastive=False,
        ),
        "ppmi": PipelineConfig(
            embedding="ppmi",
            ppmi=PpmiConfig(dim=16, min_count=1, seed=0),
            n_pairs=50,
            use_contrastive=False,
        ),
        "contextual": PipelineConfig(
            embedding="contextual",
            contextual=ContextualConfig(dim=16, attention_dim=8, epochs=1),
            n_pairs=50,
            use_contrastive=False,
        ),
    }
    return {
        name: MetadataPipeline(config).fit(train)
        for name, config in configs.items()
    }


@pytest.fixture(scope="module")
def corpus(ckg_eval) -> list[Table]:
    """A mixed shard: generated tables plus every degenerate shape."""
    tables = [item.table for item in ckg_eval[:12]]
    tables.extend(DEGENERATE_TABLES.values())
    return tables


def _variant(
    classifier: MetadataClassifier, **overrides
) -> MetadataClassifier:
    """The same fitted classifier under a tweaked config."""
    config = dataclasses.replace(classifier.config, **overrides)
    return MetadataClassifier(
        classifier.embedder,
        classifier.row_centroids,
        classifier.col_centroids,
        projection=classifier.projection,
        config=config,
    )


class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_labels_identical_across_paths(
        self, backend_pipelines, corpus, backend
    ):
        base = backend_pipelines[backend].classifier
        fused_clf = _variant(base, fused=True, vectorized=True)
        vectorized = _variant(base, fused=False, vectorized=True)
        scalar = _variant(base, fused=False, vectorized=False)
        batched = classify_corpus(fused_clf, corpus)
        assert len(batched) == len(corpus)
        for table, annotation in zip(corpus, batched):
            assert annotation == vectorized.classify(table), table.name
            assert annotation == scalar.classify(table), table.name

    def test_classify_result_annotations_agree(
        self, backend_pipelines, corpus
    ):
        # classify_result is the evidence-bearing per-table entry point;
        # its annotation must be the one the fused batch hands back.
        base = backend_pipelines["hashed"].classifier
        batched = classify_corpus(_variant(base, fused=True), corpus)
        for table, annotation in zip(corpus, batched):
            result = base.classify_result(table)
            assert annotation == result.annotation, table.name

    def test_float64_mode_identical(self, backend_pipelines, corpus):
        base = backend_pipelines["hashed"].classifier
        f64 = _variant(base, fused=True, fused_dtype="float64")
        vectorized = _variant(base, fused=False)
        for table, annotation in zip(corpus, classify_corpus(f64, corpus)):
            assert annotation == vectorized.classify(table), table.name

    def test_pipeline_classify_corpus_matches_classify(
        self, backend_pipelines, corpus
    ):
        pipeline = backend_pipelines["hashed"]
        batched = pipeline.classify_corpus(corpus)
        for table, annotation in zip(corpus, batched):
            assert annotation == pipeline.classify(table), table.name

    def test_empty_corpus(self, backend_pipelines):
        base = backend_pipelines["hashed"].classifier
        assert classify_corpus(_variant(base, fused=True), []) == []

    def test_fused_false_falls_back(self, backend_pipelines, corpus):
        pipeline = backend_pipelines["hashed"]
        base = pipeline.classifier
        off = _variant(base, fused=False)
        assert off.classify_corpus(corpus) == classify_corpus(
            _variant(base, fused=True), corpus
        )


class TestQuantized:
    """int8 token matrices: per-row scales bound the error to half a
    quantization step per element (``max|row| / 254``), so aggregates
    stay within ~1% relative error of float32 — the documented
    tolerance (SCALING.md)."""

    def test_matrices_within_tolerance(self, backend_pipelines, corpus):
        embedder = backend_pipelines["hashed"].embedder
        pack = pack_corpus(corpus)
        rows, cols = fused_level_matrices(embedder, pack)
        q_rows, q_cols = fused_level_matrices(embedder, pack, quantize=True)
        for exact, quantized in ((rows, q_rows), (cols, q_cols)):
            scale = np.abs(exact).max() or 1.0
            np.testing.assert_allclose(
                quantized, exact, atol=0.01 * scale, rtol=0.05
            )

    def test_quantized_labels_mostly_agree(self, backend_pipelines, corpus):
        base = backend_pipelines["hashed"].classifier
        exact = classify_corpus(_variant(base, fused=True), corpus)
        quantized = classify_corpus(
            _variant(base, fused=True, fused_quantize=True), corpus
        )
        agree = sum(a == b for a, b in zip(exact, quantized))
        assert agree >= int(0.9 * len(corpus))


class TestPack:
    def test_offset_bookkeeping(self, corpus):
        pack = pack_corpus(corpus)
        assert pack.n_tables == len(corpus)
        assert pack.total_rows == sum(t.n_rows for t in corpus)
        assert pack.total_cols == sum(t.n_cols for t in corpus)
        assert pack.grid_cells.size == sum(
            t.n_rows * t.n_cols for t in corpus
        )
        # Occurrences are segment-sorted by cell id.
        assert np.all(np.diff(pack.occ_cells) >= 0)
        # The column permutation is a permutation of the flat grid.
        assert np.array_equal(
            np.sort(pack.col_perm), np.arange(pack.grid_cells.size)
        )

    def test_level_widths_sum_to_grid(self, corpus):
        pack = pack_corpus(corpus)
        row_widths, col_widths = pack.level_widths()
        assert row_widths.size == pack.total_rows
        assert col_widths.size == pack.total_cols
        assert int(row_widths.sum()) == pack.grid_cells.size
        assert int(col_widths.sum()) == pack.grid_cells.size

    def test_fragments_are_memoized(self):
        table = Table([["Alpha", "Beta"], ["1", "2"]], name="memo")
        first = fused._table_fragment(table, True)
        second = fused._table_fragment(table, True)
        assert first is second
        # A different tokenizer fingerprint gets its own fragment.
        other = fused._table_fragment(table, False)
        assert other is not first

    def test_token_texts_match_compact_ids(self, corpus):
        pack = pack_corpus(corpus)
        texts = pack.token_texts()
        compact = pack.compact_occ_toks()
        assert len(texts) == pack.n_tokens
        if compact.size:
            assert int(compact.max()) < pack.n_tokens
        # Re-resolving an occurrence's text through the global vocab
        # agrees with the compact enumeration.
        for j in range(min(50, compact.size)):
            assert texts[int(compact[j])] == fused._VOCAB.texts[
                int(pack.occ_toks[j])
            ]

    def test_local_fallback_on_vocab_overflow(self, monkeypatch):
        # Fresh tables: the fragment memo must not mask the overflow.
        tables = [
            Table([["Overflow alpha", "beta"], ["1", "2"]], name="of-a"),
            Table([["Overflow gamma"], ["3"]], name="of-b"),
        ]
        monkeypatch.setattr(
            fused, "_cell_token_ids", lambda cell, lowercase: None
        )
        pack = pack_corpus(tables)
        assert pack.token_space == "local"
        monkeypatch.undo()
        global_pack = pack_corpus(tables)
        assert global_pack.token_space == "global"
        embedder = TermEmbedder(HashedEmbedding(16))
        local_rows, local_cols = fused_level_matrices(embedder, pack)
        rows, cols = fused_level_matrices(embedder, global_pack)
        np.testing.assert_allclose(local_rows, rows, atol=1e-5)
        np.testing.assert_allclose(local_cols, cols, atol=1e-5)

    def test_empty_pack(self):
        pack = pack_corpus([])
        assert pack.n_tables == 0
        assert pack.total_rows == 0
        assert pack.n_tokens == 0


class TestFusedAggregates:
    """Fused row/column matrices reproduce Def. 8 per-table aggregates."""

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_matches_scalar_aggregation(self, corpus, mode):
        embedder = TermEmbedder(HashedEmbedding(16))
        config = AggregationConfig(mode=mode)
        pack = pack_corpus(corpus, config)
        rows, cols = fused_level_matrices(embedder, pack, config)
        for i, table in enumerate(corpus):
            r0, r1 = pack.row_offsets[i], pack.row_offsets[i + 1]
            c0, c1 = pack.col_offsets[i], pack.col_offsets[i + 1]
            np.testing.assert_allclose(
                rows[r0:r1],
                aggregate_rows(embedder, table, config),
                atol=1e-4,
            )
            np.testing.assert_allclose(
                cols[c0:c1],
                aggregate_cols(embedder, table, config),
                atol=1e-4,
            )

    def test_token_matrix_matches_embedder(self):
        embedder = TermEmbedder(HashedEmbedding(16))
        tokens = ("alpha", "beta", "42")
        matrix = token_matrix(embedder, tokens)
        np.testing.assert_allclose(
            matrix, embedder.vectors(list(tokens)).astype(np.float32),
            atol=1e-6,
        )


class TestIndexedSegmentSum:
    def test_matches_naive_loop(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(20, 5)).astype(np.float32)
        indices = rng.integers(0, 20, size=37)
        lengths = np.asarray([0, 10, 0, 5, 22, 0], dtype=np.intp)
        out = _indexed_segment_sum(values, indices, lengths, lengths.size)
        start = 0
        for s, length in enumerate(lengths):
            expected = values[indices[start:start + length]].sum(axis=0)
            np.testing.assert_allclose(out[s], expected, atol=1e-5)
            start += length
        assert np.all(out[lengths == 0] == 0)

    def test_empty_indices(self):
        values = np.ones((4, 3), dtype=np.float32)
        out = _indexed_segment_sum(
            values, np.empty(0, dtype=np.intp),
            np.zeros(2, dtype=np.intp), 2,
        )
        assert out.shape == (2, 3)
        assert np.all(out == 0)
