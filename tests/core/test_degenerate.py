"""Degenerate tables must never crash the pipeline (empty, single-row,
single-column, all-numeric, all-OOV).

Each shape goes through ``MetadataPipeline.fit`` (mixed into a normal
training corpus), ``classify``/``classify_result``, the
``HybridClassifier`` router, and ``looks_relational``.  The HTTP
``/classify`` counterpart lives in ``tests/serve/test_httpd.py``.
"""

from __future__ import annotations

import pytest

from repro.core.classifier import MetadataClassifier
from repro.core.pipeline import (
    HybridClassifier,
    MetadataPipeline,
    PipelineConfig,
    looks_relational,
)
from repro.embeddings.lookup import TermEmbedder
from repro.tables.model import Table

DEGENERATE_TABLES = {
    "empty": Table([], name="empty"),
    "zero-cols": Table([[], []], name="zero-cols"),
    "single-row": Table([["Region", "Cases", "Deaths"]], name="single-row"),
    "single-col": Table([["Region"], ["North"], ["South"]], name="single-col"),
    "one-by-one": Table([["x"]], name="one-by-one"),
    "all-numeric": Table(
        [["1", "2"], ["3", "4"], ["5", "6"]], name="all-numeric"
    ),
    "all-blank": Table([["", ""], ["", ""]], name="all-blank"),
}


@pytest.fixture(scope="module")
def degenerate_fitted(ckg_train):
    """A pipeline fitted on a corpus with degenerate tables mixed in."""
    corpus = list(ckg_train[:20]) + list(DEGENERATE_TABLES.values())
    config = PipelineConfig(
        embedding="hashed", n_pairs=50, use_contrastive=False
    )
    return MetadataPipeline(config).fit(corpus)


@pytest.mark.parametrize("name", sorted(DEGENERATE_TABLES))
class TestDegenerateClassify:
    def test_pipeline_classify(self, degenerate_fitted, name):
        table = DEGENERATE_TABLES[name]
        annotation = degenerate_fitted.classify(table)
        assert len(annotation.row_labels) == table.n_rows
        assert len(annotation.col_labels) == table.n_cols

    def test_classify_result_evidence_shapes(self, degenerate_fitted, name):
        table = DEGENERATE_TABLES[name]
        result = degenerate_fitted.classify_result(table)
        assert len(result.row_evidence) == table.n_rows
        assert len(result.col_evidence) == table.n_cols

    def test_scalar_path_agrees(self, degenerate_fitted, name):
        from dataclasses import replace

        table = DEGENERATE_TABLES[name]
        clf = degenerate_fitted.classifier
        scalar = MetadataClassifier(
            clf.embedder,
            clf.row_centroids,
            clf.col_centroids,
            projection=clf.projection,
            config=replace(clf.config, vectorized=False),
        )
        assert clf.classify(table) == scalar.classify(table)

    def test_hybrid_router(self, degenerate_fitted, name):
        table = DEGENERATE_TABLES[name]
        hybrid = HybridClassifier(degenerate_fitted)
        annotation = hybrid.classify(table)
        assert len(annotation.row_labels) == table.n_rows
        assert hybrid.fast_path_count + hybrid.full_path_count == 1

    def test_looks_relational_never_raises(self, name):
        # Permissive thresholds reach the row[0] probe, which used to
        # IndexError on zero-column rows.
        table = DEGENERATE_TABLES[name]
        assert isinstance(looks_relational(table), bool)
        assert isinstance(
            looks_relational(
                table, header_numeric_max=1.0, body_numeric_min=0.0
            ),
            bool,
        )


class TestLooksRelationalGuards:
    def test_zero_columns_is_false(self):
        assert not looks_relational(
            Table([[], []]), header_numeric_max=1.0, body_numeric_min=0.0
        )

    def test_single_row_is_false(self):
        assert not looks_relational(Table([["a", "b"]]))

    def test_relational_table_still_detected(self, simple_table):
        assert looks_relational(simple_table)


class TestAllOov:
    def test_all_oov_zero_backoff(self, degenerate_fitted):
        """Every token OOV with the "zero" back-off: all level vectors
        collapse to zero, and the classifier must still label cleanly."""

        class _NoneModel:
            @property
            def dim(self) -> int:
                return degenerate_fitted.embedder.dim

            def vector(self, token: str):
                return None

        clf = degenerate_fitted.classifier
        oov_embedder = TermEmbedder(_NoneModel(), oov="zero")
        oov_clf = MetadataClassifier(
            oov_embedder,
            clf.row_centroids,
            clf.col_centroids,
            projection=clf.projection,
            config=clf.config,
        )
        table = Table([["alpha", "beta"], ["gamma", "delta"]], name="oov")
        annotation = oov_clf.classify(table)
        assert len(annotation.row_labels) == 2
        assert len(annotation.col_labels) == 2
