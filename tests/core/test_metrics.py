"""Tests for evaluation metrics (Eq. 9, per-level accuracy)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    ConfusionCounts,
    binary_metadata_accuracy,
    confusion_counts,
    evaluate_corpus,
    level_accuracy,
    level_confusion,
    table_level_accuracy,
)
from repro.tables.labels import LevelKind, LevelLabel, TableAnnotation
from repro.tables.model import AnnotatedTable, Table


def _ann(hmd: int, rows: int = 5, cols: int = 3, vmd: int = 0) -> TableAnnotation:
    return TableAnnotation.from_depths(rows, cols, hmd_depth=hmd, vmd_depth=vmd)


class TestConfusionCounts:
    def test_accuracy(self):
        counts = ConfusionCounts(tp=3, tn=5, fp=1, fn=1)
        assert counts.accuracy == pytest.approx(0.8)
        assert counts.precision == pytest.approx(0.75)
        assert counts.recall == pytest.approx(0.75)
        assert counts.f1 == pytest.approx(0.75)

    def test_empty(self):
        counts = ConfusionCounts()
        assert counts.accuracy == 0.0
        assert counts.precision == 0.0
        assert counts.f1 == 0.0

    def test_add(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(1, 1, 1, 1)
        assert (total.tp, total.tn, total.fp, total.fn) == (2, 3, 4, 5)


class TestConfusion:
    def test_perfect(self):
        counts = confusion_counts(_ann(2), _ann(2))
        assert counts.fp == 0 and counts.fn == 0
        assert counts.accuracy == 1.0

    def test_missed_header(self):
        counts = confusion_counts(_ann(2), _ann(1))
        assert counts.fn == 1

    def test_over_extension(self):
        counts = confusion_counts(_ann(1), _ann(3))
        assert counts.fp == 2

    def test_cols_axis(self):
        counts = confusion_counts(
            _ann(1, vmd=2), _ann(1, vmd=1), axis="cols"
        )
        assert counts.fn == 1

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            confusion_counts(_ann(1), _ann(1), axis="depth")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(_ann(1, rows=4), _ann(1, rows=5))

    def test_cmd_counts_as_metadata(self):
        truth = TableAnnotation.from_depths(5, 2, hmd_depth=1, cmd_rows=[3])
        pred = TableAnnotation.from_depths(5, 2, hmd_depth=1, cmd_rows=[3])
        counts = confusion_counts(truth, pred)
        assert counts.tp == 2

    def test_binary_accuracy_pooled(self):
        pairs = [(_ann(1), _ann(1)), (_ann(2), _ann(1))]
        acc = binary_metadata_accuracy(pairs)
        assert acc == pytest.approx(9 / 10)


class TestLevelConfusion:
    def test_non_participating_table(self):
        assert level_confusion(_ann(1), _ann(1), kind=LevelKind.HMD, level=3) is None

    def test_fp_at_level(self):
        counts = level_confusion(_ann(2), _ann(3), kind=LevelKind.HMD, level=2)
        assert counts.tp == 1
        assert counts.fp == 0  # the extra row is claimed at level 3, not 2
        counts3 = level_confusion(_ann(3), _ann(3), kind=LevelKind.HMD, level=3)
        assert counts3.tp == 1


class TestLevelAccuracy:
    def test_pooled_perfect(self):
        pairs = [(_ann(2), _ann(2))] * 3
        assert level_accuracy(pairs, kind=LevelKind.HMD, level=2) == 1.0

    def test_none_when_no_participation(self):
        pairs = [(_ann(1), _ann(1))]
        assert level_accuracy(pairs, kind=LevelKind.HMD, level=4) is None


class TestTableLevelAccuracy:
    def test_kind_match_credits_level_blind(self):
        """A level-blind baseline labelling a level-2 row HMD1 still
        gets kind credit at level 2 (the Table V comparison rule)."""
        truth = _ann(2)
        pred = TableAnnotation(
            row_labels=(LevelLabel.hmd(1), LevelLabel.hmd(1),
                        LevelLabel.data(), LevelLabel.data(), LevelLabel.data()),
            col_labels=tuple([LevelLabel.data()] * 3),
        )
        assert table_level_accuracy(
            [(truth, pred)], kind=LevelKind.HMD, level=2, match="kind"
        ) == 1.0
        assert table_level_accuracy(
            [(truth, pred)], kind=LevelKind.HMD, level=2, match="exact"
        ) == 0.0

    def test_strict_penalizes_over_extension(self):
        truth = _ann(1)
        pred = TableAnnotation(
            row_labels=(LevelLabel.hmd(1), LevelLabel.data(), LevelLabel.hmd(1),
                        LevelLabel.data(), LevelLabel.data()),
            col_labels=tuple([LevelLabel.data()] * 3),
        )
        assert table_level_accuracy(
            [(truth, pred)], kind=LevelKind.HMD, level=1, match="kind"
        ) == 1.0
        assert table_level_accuracy(
            [(truth, pred)], kind=LevelKind.HMD, level=1, match="strict"
        ) == 0.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            table_level_accuracy([], kind=LevelKind.HMD, level=1, match="fuzzy")

    def test_none_without_participants(self):
        assert (
            table_level_accuracy(
                [(_ann(1), _ann(1))], kind=LevelKind.VMD, level=2
            )
            is None
        )

    def test_vmd_axis(self):
        truth = _ann(1, vmd=2)
        pred = _ann(1, vmd=2)
        assert table_level_accuracy(
            [(truth, pred)], kind=LevelKind.VMD, level=2
        ) == 1.0


class TestEvaluateCorpus:
    def test_end_to_end(self, simple_table):
        truth = TableAnnotation.from_depths(4, 4, hmd_depth=1, vmd_depth=1)
        corpus = [AnnotatedTable(table=simple_table, annotation=truth)] * 4

        def perfect(table: Table) -> TableAnnotation:
            return truth

        result = evaluate_corpus(corpus, perfect)
        assert result.n_tables == 4
        assert result.hmd_accuracy[1] == 1.0
        assert result.vmd_accuracy[1] == 1.0
        assert result.row_binary_accuracy == 1.0
        assert 2 not in result.hmd_accuracy  # no level-2 ground truth

    def test_always_data_classifier(self, simple_table):
        truth = TableAnnotation.from_depths(4, 4, hmd_depth=1, vmd_depth=1)
        corpus = [AnnotatedTable(table=simple_table, annotation=truth)]

        def never(table: Table) -> TableAnnotation:
            return TableAnnotation.from_depths(4, 4)

        result = evaluate_corpus(corpus, never)
        assert result.hmd_accuracy[1] == 0.0
        assert result.row_confusion.fn == 1
