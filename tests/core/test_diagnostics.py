"""Tests for the angle-geometry diagnostics."""

from __future__ import annotations

import pytest

from repro.core.bootstrap import bootstrap_corpus
from repro.core.diagnostics import (
    AngleSpectrum,
    angle_spectrum,
    ascii_histogram,
    render_spectrum,
    separability_report,
)


@pytest.fixture(scope="module")
def spectrum(hashed_pipeline, ckg_train):
    labeled = bootstrap_corpus(ckg_train[:30])
    return angle_spectrum(hashed_pipeline.embedder, labeled, axis="rows")


class TestSpectrum:
    def test_populations_filled(self, spectrum):
        assert spectrum.de
        assert spectrum.mde_de
        assert spectrum.n_samples == (
            len(spectrum.mde) + len(spectrum.de) + len(spectrum.mde_de)
        )

    def test_angles_in_range(self, spectrum):
        for pool in (spectrum.mde, spectrum.de, spectrum.mde_de):
            assert all(0.0 <= a <= 180.0 for a in pool)

    def test_invalid_axis(self, hashed_pipeline):
        with pytest.raises(ValueError):
            angle_spectrum(hashed_pipeline.embedder, [], axis="sideways")

    def test_cols_axis(self, hashed_pipeline, ckg_train):
        labeled = bootstrap_corpus(ckg_train[:10])
        cols = angle_spectrum(hashed_pipeline.embedder, labeled, axis="cols")
        assert cols.n_samples > 0


class TestReport:
    def test_field_geometry_separates(self, spectrum):
        """Field-aware hashed embeddings must yield a clear separation
        (if this fails, the whole pipeline premise is broken)."""
        report = separability_report(spectrum)
        assert report.separation_auc >= 0.65
        assert report.median_mde_de > report.median_de

    def test_empty_spectrum_is_neutral(self):
        report = separability_report(AngleSpectrum())
        assert report.separation_auc == 0.5
        assert report.median_mde is None

    def test_verdict_labels(self):
        good = AngleSpectrum(mde=[5.0] * 5, de=[10.0] * 5, mde_de=[90.0] * 5)
        assert separability_report(good).verdict == "well separated"
        bad = AngleSpectrum(mde=[50.0] * 5, de=[50.0] * 5, mde_de=[50.0] * 5)
        assert "poorly separated" in separability_report(bad).verdict


class TestHistogram:
    def test_basic_render(self):
        text = ascii_histogram([10.0, 10.5, 90.0], bins=18, label="angles")
        assert text.startswith("angles (n=3)")
        assert text.count("|") == 2 * 18

    def test_empty_values(self):
        text = ascii_histogram([], bins=4)
        assert text.count("\n") == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
        with pytest.raises(ValueError):
            ascii_histogram([1.0], lo=10, hi=5)

    def test_render_spectrum_complete(self, spectrum):
        text = render_spectrum(spectrum)
        assert "metadata-metadata angles" in text
        assert "separation AUC" in text
