"""Tests for bootstrap CIs and paired permutation tests."""

from __future__ import annotations

import pytest

from repro.core.significance import (
    bootstrap_ci,
    compare_methods,
    paired_permutation_test,
    per_table_outcomes,
)
from repro.core.metrics import table_level_accuracy
from repro.tables.labels import LevelKind, TableAnnotation


def _ann(hmd: int, rows: int = 5, cols: int = 3) -> TableAnnotation:
    return TableAnnotation.from_depths(rows, cols, hmd_depth=hmd)


class TestPerTableOutcomes:
    def test_matches_table_level_accuracy(self):
        pairs = [(_ann(2), _ann(2)), (_ann(2), _ann(1)), (_ann(1), _ann(1))]
        outcomes = per_table_outcomes(pairs, kind=LevelKind.HMD, level=2)
        assert len(outcomes) == 2  # the third table has no level 2
        mean = sum(outcomes) / len(outcomes)
        assert mean == table_level_accuracy(pairs, kind=LevelKind.HMD, level=2)

    def test_strict_mode(self):
        pairs = [(_ann(1), _ann(3))]
        kind = per_table_outcomes(pairs, kind=LevelKind.HMD, level=1)
        strict = per_table_outcomes(
            pairs, kind=LevelKind.HMD, level=1, match="strict"
        )
        assert kind == [True]
        assert strict == [True]  # over-extension claims levels 2-3, not 1

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            per_table_outcomes(
                [(_ann(1), _ann(1))], kind=LevelKind.HMD, level=1, match="f"
            )


class TestBootstrapCi:
    def test_interval_contains_estimate(self):
        outcomes = [True] * 70 + [False] * 30
        ci = bootstrap_ci(outcomes, seed=1)
        assert ci.estimate == pytest.approx(0.7)
        assert ci.estimate in ci
        assert ci.lo < ci.estimate < ci.hi
        assert ci.n_tables == 100

    def test_width_shrinks_with_n(self):
        narrow = bootstrap_ci([True, False] * 200, seed=2)
        wide = bootstrap_ci([True, False] * 5, seed=2)
        assert (narrow.hi - narrow.lo) < (wide.hi - wide.lo)

    def test_degenerate_all_true(self):
        ci = bootstrap_ci([True] * 20, seed=0)
        assert ci.estimate == 1.0
        assert ci.lo == 1.0 and ci.hi == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([True], confidence=1.5)

    def test_str(self):
        text = str(bootstrap_ci([True, False], seed=0))
        assert "%" in text and "n=2" in text

    def test_deterministic(self):
        a = bootstrap_ci([True, False, True], seed=7)
        b = bootstrap_ci([True, False, True], seed=7)
        assert (a.lo, a.hi) == (b.lo, b.hi)


class TestPairedTest:
    def test_identical_methods_not_significant(self):
        outcomes = [True, False] * 20
        result = paired_permutation_test(outcomes, outcomes, seed=3)
        assert result.mean_difference == 0.0
        assert result.p_value == 1.0

    def test_clear_difference_significant(self):
        a = [True] * 40
        b = [False] * 30 + [True] * 10
        result = paired_permutation_test(a, b, seed=3)
        assert result.mean_difference == pytest.approx(0.75)
        assert result.significant_at_05

    def test_two_sided(self):
        a = [False] * 30 + [True] * 10
        b = [True] * 40
        result = paired_permutation_test(a, b, seed=3)
        assert result.mean_difference < 0
        assert result.significant_at_05

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_test([True], [True, False])
        with pytest.raises(ValueError):
            paired_permutation_test([], [])

    def test_small_noise_not_significant(self):
        a = [True] * 19 + [False]
        b = [True] * 18 + [False] * 2
        result = paired_permutation_test(a, b, seed=5)
        assert not result.significant_at_05


class TestCompareMethods:
    def test_end_to_end(self, hashed_pipeline, ckg_eval):
        from repro.baselines.table_transformer import TableTransformerBaseline

        tt = TableTransformerBaseline()
        ours_pairs = [
            (i.annotation, hashed_pipeline.classify(i.table)) for i in ckg_eval
        ]
        tt_pairs = [(i.annotation, tt.classify(i.table)) for i in ckg_eval]
        result = compare_methods(
            ours_pairs, tt_pairs, kind=LevelKind.HMD, level=1
        )
        assert result.n_tables == len(ckg_eval)
        assert -1.0 <= result.mean_difference <= 1.0
        assert 0.0 < result.p_value <= 1.0
