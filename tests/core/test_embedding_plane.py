"""Tests for the vectorized table-embedding plane.

The contract under test: :func:`embed_table` / :func:`level_vectors`
must reproduce the scalar :mod:`repro.core.aggregate` vectors (up to
floating-point re-association) for every mode they claim to support,
fall back to the scalar path for the modes they do not, and never raise
on degenerate shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import (
    AggregationConfig,
    aggregate_cols,
    aggregate_level,
    aggregate_rows,
)
from repro.core.classifier import MetadataClassifier
from repro.core.embedding_plane import (
    embed_table,
    level_vectors,
    supports_fast_path,
)
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.tables.model import Table


@pytest.fixture
def embedder() -> TermEmbedder:
    return TermEmbedder(HashedEmbedding(16))


class TestEmbedTableEquivalence:
    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_matches_scalar_path(self, embedder, hierarchical_table, mode):
        config = AggregationConfig(mode=mode)
        embedded = embed_table(embedder, hierarchical_table, config)
        np.testing.assert_allclose(
            embedded.row_vectors,
            aggregate_rows(embedder, hierarchical_table, config),
            atol=1e-9,
        )
        np.testing.assert_allclose(
            embedded.col_vectors,
            aggregate_cols(embedder, hierarchical_table, config),
            atol=1e-9,
        )

    def test_matches_on_generated_corpus(self, embedder, ckg_eval):
        config = AggregationConfig()
        for annotated in ckg_eval[:10]:
            table = annotated.table
            embedded = embed_table(embedder, table, config)
            np.testing.assert_allclose(
                embedded.row_vectors,
                aggregate_rows(embedder, table, config),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                embedded.col_vectors,
                aggregate_cols(embedder, table, config),
                atol=1e-9,
            )

    def test_token_accounting(self, embedder, simple_table):
        embedded = embed_table(embedder, simple_table, AggregationConfig())
        assert embedded.n_tokens > 0
        assert 0 < embedded.n_unique_tokens <= embedded.n_tokens

    def test_repeated_cells_share_work(self, embedder):
        table = Table([["x", "x"], ["x", "x"], ["x", "x"]])
        embedded = embed_table(embedder, table, AggregationConfig())
        assert embedded.n_unique_tokens == 1
        assert embedded.n_tokens == 6
        np.testing.assert_allclose(
            embedded.row_vectors,
            aggregate_rows(embedder, table, AggregationConfig()),
        )


class TestDegenerateShapes:
    def test_zero_column_table(self, embedder):
        embedded = embed_table(embedder, Table([[], []]), AggregationConfig())
        assert embedded.row_vectors.shape == (2, 16)
        assert embedded.col_vectors.shape == (0, 16)
        assert np.all(embedded.row_vectors == 0)

    def test_empty_table(self, embedder):
        embedded = embed_table(embedder, Table([]), AggregationConfig())
        assert embedded.row_vectors.shape == (0, 16)
        assert embedded.col_vectors.shape == (0, 16)

    def test_all_blank_grid(self, embedder):
        table = Table([["", ""], ["", ""]])
        embedded = embed_table(embedder, table, AggregationConfig())
        assert np.all(embedded.row_vectors == 0)
        assert np.all(embedded.col_vectors == 0)
        assert embedded.n_tokens == 0

    def test_partially_blank_mean_mode(self, embedder):
        # A blank row must stay zero in mean mode (no divide-by-zero).
        table = Table([["alpha", "beta"], ["", ""]])
        config = AggregationConfig(mode="mean")
        embedded = embed_table(embedder, table, config)
        np.testing.assert_allclose(
            embedded.row_vectors, aggregate_rows(embedder, table, config)
        )
        assert np.all(embedded.row_vectors[1] == 0)
        assert np.all(np.isfinite(embedded.row_vectors))


class TestFallbacks:
    def test_concat_mode_falls_back(self, embedder, simple_table):
        config = AggregationConfig(mode="concat", concat_terms=4)
        assert not supports_fast_path(embedder, config)
        embedded = embed_table(embedder, simple_table, config)
        assert embedded.n_tokens == -1  # marker: scalar path was used
        np.testing.assert_allclose(
            embedded.row_vectors, aggregate_rows(embedder, simple_table, config)
        )

    def test_contextual_falls_back_only_with_encoder(self, embedder):
        config = AggregationConfig(contextual=True)
        # Hashed backend has no encode_sentence: fast path still applies.
        assert supports_fast_path(embedder, config)

        class _Encoder(HashedEmbedding):
            def encode_sentence(self, tokens):
                return np.zeros((len(tokens), self.dim))

        contextual = TermEmbedder(_Encoder(16))
        assert not supports_fast_path(contextual, config)


class TestLevelVectors:
    def test_matches_aggregate_level(self, embedder):
        levels = [
            ["State", "City", "Enrollment"],
            ["New York", "Ithaca", "19,639"],
            [],
            ["", ""],
        ]
        batched = level_vectors(embedder, levels, AggregationConfig())
        scalar = np.stack(
            [aggregate_level(embedder, c, AggregationConfig()) for c in levels]
        )
        np.testing.assert_allclose(batched, scalar, atol=1e-9)

    def test_empty_batch(self, embedder):
        assert level_vectors(embedder, [], AggregationConfig()).shape == (0, 16)

    def test_non_string_cells(self, embedder):
        batched = level_vectors(embedder, [[12, None, "x"]], AggregationConfig())
        scalar = aggregate_level(embedder, [12, None, "x"], AggregationConfig())
        np.testing.assert_allclose(batched[0], scalar, atol=1e-9)


class TestClassifierEquivalence:
    def test_identical_annotations_on_corpus(self, hashed_pipeline, ckg_eval):
        """The acceptance bar: byte-identical TableAnnotations between the
        vectorized classifier and the scalar seed path."""
        from dataclasses import replace

        clf = hashed_pipeline.classifier
        scalar = MetadataClassifier(
            clf.embedder,
            clf.row_centroids,
            clf.col_centroids,
            projection=clf.projection,
            config=replace(clf.config, vectorized=False),
        )
        fast = MetadataClassifier(
            clf.embedder,
            clf.row_centroids,
            clf.col_centroids,
            projection=clf.projection,
            config=replace(clf.config, vectorized=True),
        )
        for annotated in ckg_eval:
            assert fast.classify(annotated.table) == scalar.classify(
                annotated.table
            )

    def test_classify_result_keeps_evidence(self, hashed_pipeline, ckg_eval):
        result = hashed_pipeline.classifier.classify_result(ckg_eval[0].table)
        assert len(result.row_evidence) == ckg_eval[0].table.n_rows
        assert len(result.col_evidence) == ckg_eval[0].table.n_cols
        assert all(ev.rule for ev in result.row_evidence)
        # Labels-only path agrees with the evidence path.
        assert hashed_pipeline.classifier.classify(
            ckg_eval[0].table
        ) == result.annotation


class TestTokenMemoKeying:
    """Regression: the ``_cell_token_texts`` memo is keyed by the
    tokenizer fingerprint (``lowercase``), not the cell text alone —
    two pipelines with different casing configs in one process must not
    serve each other stale token lists."""

    def test_two_lowercase_configs_in_one_process(self, embedder):
        table = Table(
            [["MIXED Case HEADER", "Another COLUMN"],
             ["DataValue", "MORE data"]],
            name="casing",
        )
        lowered = AggregationConfig(lowercase=True)
        preserved = AggregationConfig(lowercase=False)
        # Interleave the two configs so a mis-keyed memo would serve
        # the first config's tokens to the second.
        for config in (lowered, preserved, lowered, preserved):
            embedded = embed_table(embedder, table, config)
            np.testing.assert_allclose(
                embedded.row_vectors,
                aggregate_rows(embedder, table, config),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                embedded.col_vectors,
                aggregate_cols(embedder, table, config),
                atol=1e-9,
            )
        # Hashed vectors are case-sensitive, so the configs genuinely
        # disagree — the equality above is not vacuous.
        assert not np.allclose(
            embed_table(embedder, table, lowered).row_vectors,
            embed_table(embedder, table, preserved).row_vectors,
        )
