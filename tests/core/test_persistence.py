"""Tests for pipeline save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persistence import (
    PersistenceError,
    load_pipeline,
    save_pipeline,
)
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.vocabularies import get_domain
from repro.embeddings.contextual import ContextualConfig
from repro.embeddings.ppmi import PpmiConfig
from repro.embeddings.word2vec import Word2VecConfig

#: One small-but-real config per embedding backend, so the round-trip
#: guarantee is checked for every serializable pipeline shape.
BACKEND_CONFIGS = {
    "hashed": PipelineConfig(
        embedding="hashed", hashed_dim=32, n_pairs=100
    ),
    "word2vec": PipelineConfig(
        embedding="word2vec",
        word2vec=Word2VecConfig(dim=16, epochs=1, seed=0),
        n_pairs=100,
    ),
    "ppmi": PipelineConfig(
        embedding="ppmi",
        ppmi=PpmiConfig(dim=16, min_count=1),
        n_pairs=100,
    ),
    "contextual": PipelineConfig(
        embedding="contextual",
        contextual=ContextualConfig(dim=12, attention_dim=6, epochs=1),
        n_pairs=100,
    ),
}


def _assert_same_predictions(a, b, corpus):
    for item in corpus[:10]:
        left = a.classify(item.table)
        right = b.classify(item.table)
        assert left.row_labels == right.row_labels, item.table.name
        assert left.col_labels == right.col_labels, item.table.name


class TestAllBackendsRoundTrip:
    """Identical classification before/after save/load, per backend."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_CONFIGS))
    def test_round_trip_identical_output(
        self, backend, ckg_train, ckg_eval, tmp_path
    ):
        pipeline = MetadataPipeline(BACKEND_CONFIGS[backend]).fit(
            ckg_train[:15]
        )
        path = save_pipeline(pipeline, tmp_path / f"{backend}.npz")
        loaded = load_pipeline(path)
        assert type(loaded.embedder.model).__name__ == type(
            pipeline.embedder.model
        ).__name__
        _assert_same_predictions(pipeline, loaded, ckg_eval)


class TestRoundTrip:
    def test_hashed_backend(self, hashed_pipeline, ckg_eval, tmp_path):
        path = save_pipeline(hashed_pipeline, tmp_path / "model")
        assert path.suffix == ".npz"
        loaded = load_pipeline(path)
        _assert_same_predictions(hashed_pipeline, loaded, ckg_eval)

    def test_word2vec_backend(self, ckg_train, ckg_eval, tmp_path):
        config = PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=16, epochs=1, seed=0),
            n_pairs=100,
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:25])
        path = save_pipeline(pipeline, tmp_path / "w2v.npz")
        loaded = load_pipeline(path)
        _assert_same_predictions(pipeline, loaded, ckg_eval)

    def test_contextual_backend(self, ckg_train, tmp_path):
        config = PipelineConfig(
            embedding="contextual",
            contextual=ContextualConfig(dim=12, attention_dim=6, epochs=1),
            n_pairs=100,
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:15])
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "ctx"))
        table = ckg_train[0].table
        assert pipeline.classify(table).row_labels == loaded.classify(table).row_labels

    def test_projection_restored(self, ckg_train, tmp_path):
        fields = get_domain("biomedical").field_map()
        config = PipelineConfig(
            embedding="hashed", hashed_fields=fields, n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:20])
        assert pipeline.projection is not None
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "p"))
        assert loaded.projection is not None
        np.testing.assert_allclose(
            loaded.projection.weights, pipeline.projection.weights
        )

    def test_centroids_restored(self, hashed_pipeline, tmp_path):
        loaded = load_pipeline(save_pipeline(hashed_pipeline, tmp_path / "c"))
        original = hashed_pipeline.row_centroids
        restored = loaded.row_centroids
        assert restored.mde == original.mde
        assert restored.de == original.de
        assert restored.mde_de == original.mde_de
        np.testing.assert_allclose(restored.meta_ref, original.meta_ref)
        assert len(restored.level_stats) == len(original.level_stats)


class TestErrors:
    def test_unfitted_save(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_pipeline(MetadataPipeline(), tmp_path / "x")

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_pipeline(tmp_path / "absent.npz")

    def test_corrupt_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(PersistenceError):
            load_pipeline(path)

    def test_wrong_version(self, hashed_pipeline, tmp_path):
        import json

        path = save_pipeline(hashed_pipeline, tmp_path / "v")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "__state__"}
            state = json.loads(bytes(data["__state__"]).decode())
        state["format_version"] = 999
        np.savez(
            path,
            __state__=np.frombuffer(json.dumps(state).encode(), dtype=np.uint8),
            **arrays,
        )
        with pytest.raises(PersistenceError, match="version"):
            load_pipeline(path)


class TestDirectoryStore:
    """The zero-copy directory store: byte-identical to .npz loads."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_CONFIGS))
    def test_npz_and_dir_loads_classify_identically(
        self, backend, ckg_train, ckg_eval, tmp_path
    ):
        from repro.core.persistence import load_pipeline_dir, save_pipeline_dir

        pipeline = MetadataPipeline(BACKEND_CONFIGS[backend]).fit(
            ckg_train[:15]
        )
        npz = save_pipeline(pipeline, tmp_path / f"{backend}.npz")
        store = save_pipeline_dir(pipeline, tmp_path / f"{backend}_dir")
        from_npz = load_pipeline(npz)
        from_dir = load_pipeline_dir(store)
        for item in ckg_eval[:10]:
            left = from_npz.classify(item.table)
            right = from_dir.classify(item.table)
            assert left == right, item.table.name

    def test_load_pipeline_autodetects_directories(
        self, hashed_pipeline, tmp_path
    ):
        from repro.core.persistence import save_pipeline_dir

        store = save_pipeline_dir(hashed_pipeline, tmp_path / "store")
        loaded = load_pipeline(store)
        assert loaded.is_fitted

    def test_mmap_views_by_default(self, hashed_pipeline, tmp_path):
        from repro.core.persistence import load_pipeline_dir, save_pipeline_dir

        store = save_pipeline_dir(hashed_pipeline, tmp_path / "store")
        mapped = load_pipeline_dir(store)
        assert isinstance(mapped.row_centroids.meta_ref, np.memmap)
        eager = load_pipeline_dir(store, mmap=False)
        assert not isinstance(eager.row_centroids.meta_ref, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(mapped.row_centroids.meta_ref),
            eager.row_centroids.meta_ref,
        )

    def test_refuses_to_overwrite_a_file(self, hashed_pipeline, tmp_path):
        from repro.core.persistence import save_pipeline_dir

        target = tmp_path / "occupied"
        target.write_text("something else")
        with pytest.raises(PersistenceError, match="not a directory"):
            save_pipeline_dir(hashed_pipeline, target)


class TestDirectoryStoreCorruption:
    @pytest.fixture
    def store(self, hashed_pipeline, tmp_path):
        from repro.core.persistence import save_pipeline_dir

        return save_pipeline_dir(hashed_pipeline, tmp_path / "store")

    def test_missing_directory(self, tmp_path):
        from repro.core.persistence import load_pipeline_dir

        with pytest.raises(PersistenceError, match="no such model directory"):
            load_pipeline_dir(tmp_path / "absent")

    def test_interrupted_save_has_no_state_file(self, store):
        from repro.core.persistence import load_pipeline_dir

        (store / "state.json").unlink()
        with pytest.raises(PersistenceError, match="state.json"):
            load_pipeline_dir(store)

    def test_malformed_state_json(self, store):
        from repro.core.persistence import load_pipeline_dir

        (store / "state.json").write_text("{broken")
        with pytest.raises(PersistenceError, match="malformed"):
            load_pipeline_dir(store)

    def test_missing_array_file(self, store):
        from repro.core.persistence import load_pipeline_dir

        victim = next(store.glob("*.npy"))
        victim.unlink()
        with pytest.raises(PersistenceError, match="missing array"):
            load_pipeline_dir(store)

    def test_truncated_array_file(self, store):
        from repro.core.persistence import load_pipeline_dir

        victim = next(store.glob("*.npy"))
        victim.write_bytes(b"\x93NUMPY junk")
        with pytest.raises(PersistenceError):
            load_pipeline_dir(store)
