"""Focused tests for central-metadata (CMD) detection."""

from __future__ import annotations

import numpy as np

from repro.core.angles import AngleRange
from repro.core.centroids import CentroidSet
from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.tables.labels import LevelKind
from repro.tables.model import Table

FIELDS = {
    "age": "attr", "duration": "attr", "severity": "attr",
    "outcomes": "attr", "treatment": "attr",
    "alpha": "entity", "beta": "entity",
}


def _classifier(*, detect_cmd: bool = True) -> MetadataClassifier:
    embedder = TermEmbedder(HashedEmbedding(16, fields=FIELDS, field_weight=0.85))
    meta_ref = embedder.vector("age") + embedder.vector("duration")
    data_ref = embedder.vector("123") + embedder.vector("alpha")
    centroids = CentroidSet(
        mde=AngleRange(0, 30),
        de=AngleRange(0, 55),
        mde_de=AngleRange(45, 120),
        meta_ref=meta_ref / np.linalg.norm(meta_ref),
        data_ref=data_ref / np.linalg.norm(data_ref),
    )
    return MetadataClassifier(
        embedder,
        centroids,
        centroids,
        config=ClassifierConfig(detect_cmd=detect_cmd),
    )


def _table_with_subheader() -> Table:
    rng = np.random.default_rng(1)
    rows = [["age", "duration", "severity"]]
    for _ in range(3):
        rows.append([str(rng.integers(0, 9999)) for _ in range(3)])
    rows.append(["treatment outcomes", "", ""])  # the subheader
    for _ in range(3):
        rows.append([str(rng.integers(0, 9999)) for _ in range(3)])
    return Table(rows)


class TestCmdDetection:
    def test_subheader_detected(self):
        classifier = _classifier()
        annotation = classifier.classify(_table_with_subheader())
        assert annotation.row_labels[4].kind is LevelKind.CMD
        assert annotation.hmd_depth == 1  # CMD does not extend HMD depth

    def test_detection_can_be_disabled(self):
        classifier = _classifier(detect_cmd=False)
        annotation = classifier.classify(_table_with_subheader())
        assert all(
            label.kind is not LevelKind.CMD for label in annotation.row_labels
        )

    def test_rows_after_cmd_are_data(self):
        classifier = _classifier()
        annotation = classifier.classify(_table_with_subheader())
        for i in (5, 6, 7):
            assert annotation.row_labels[i].kind is LevelKind.DATA

    def test_generator_cmd_tables_end_to_end(self, hashed_pipeline):
        """Generated CMD rows are found at better-than-chance rates."""
        from repro.corpus.generator import GeneratorConfig, GSTGenerator
        from repro.corpus.vocabularies import get_domain

        generator = GSTGenerator(
            GeneratorConfig(domain=get_domain("biomedical"), cmd_prob=1.0,
                            data_rows=(8, 12)),
            seed=77,
        )
        corpus = [item for item in generator.generate(30) if item.annotation.cmd_rows]
        assert corpus
        hits = 0
        for item in corpus:
            annotation = hashed_pipeline.classify(item.table)
            for row_index in item.annotation.cmd_rows:
                if annotation.row_labels[row_index].kind is LevelKind.CMD:
                    hits += 1
        total = sum(len(item.annotation.cmd_rows) for item in corpus)
        assert hits / total >= 0.5
