"""Tests for table orientation detection."""

from __future__ import annotations

import pytest

from repro.core.orientation import (
    classify_oriented,
    coherence_score,
    detect_orientation,
)
from repro.tables.labels import LevelKind, TableAnnotation
from repro.tables.model import Table


class TestCoherenceScore:
    def test_perfect_agreement(self):
        table = Table([["age", "total"], ["1", "2"], ["3", "4"]])
        annotation = TableAnnotation.from_depths(3, 2, hmd_depth=1)
        assert coherence_score(table, annotation) == pytest.approx(1.0)

    def test_inverted_annotation_scores_low(self):
        table = Table([["age", "total"], ["1", "2"], ["3", "4"]])
        wrong = TableAnnotation(
            row_labels=("DATA", "HMD", "HMD"),
            col_labels=("DATA", "DATA"),
        )
        assert coherence_score(table, wrong) == pytest.approx(0.0)

    def test_empty_table(self):
        assert coherence_score(Table([]), TableAnnotation()) == 0.0


class TestDetection:
    def test_normal_table_stays_normal(self, hashed_pipeline, ckg_eval):
        hits = 0
        for item in ckg_eval[:12]:
            result = detect_orientation(hashed_pipeline, item.table)
            hits += result.orientation == "normal"
        assert hits >= 10  # conventional tables keep their orientation

    def test_transposed_table_detected(self, hashed_pipeline, ckg_eval):
        hits = 0
        candidates = [i for i in ckg_eval[:12] if i.vmd_depth == 0]
        for item in candidates:
            flipped = item.table.transpose()
            result = detect_orientation(hashed_pipeline, flipped)
            hits += result.orientation == "transposed"
        assert candidates
        assert hits >= len(candidates) * 0.7

    def test_annotation_in_original_frame(self, hashed_pipeline, ckg_eval):
        item = next(i for i in ckg_eval if i.vmd_depth == 0 and i.hmd_depth >= 1)
        flipped = item.table.transpose()
        result = detect_orientation(hashed_pipeline, flipped)
        assert len(result.annotation.row_labels) == flipped.n_rows
        assert len(result.annotation.col_labels) == flipped.n_cols
        if result.orientation == "transposed":
            # headers live in the first column(s) of the flipped frame
            assert result.annotation.col_labels[0].kind is LevelKind.VMD

    def test_classify_oriented_wrapper(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        annotation = classify_oriented(hashed_pipeline, table)
        assert len(annotation.row_labels) == table.n_rows

    def test_scores_reported(self, hashed_pipeline, ckg_eval):
        result = detect_orientation(hashed_pipeline, ckg_eval[0].table)
        assert 0.0 <= result.normal_score <= 1.0
        assert 0.0 <= result.transposed_score <= 1.0
