"""Tests for self-training refinement."""

from __future__ import annotations

import pytest

from repro.core.metrics import evaluate_corpus
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.core.selftrain import predicted_bootstrap, refine_self_training
from repro.corpus.registry import build_split
from repro.corpus.vocabularies import get_domain
from repro.tables.labels import LevelKind


@pytest.fixture(scope="module")
def saus_pipeline_and_corpus():
    """A markup-free fit: the scenario self-training exists for."""
    train, evaluation = build_split("saus", n_train=120, n_eval=30, seed=3)
    fields = get_domain("census").field_map()
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=fields,
        bootstrap="first_level",
        n_pairs=200,
    )
    return MetadataPipeline(config).fit(train), train, evaluation


class TestPredictedBootstrap:
    def test_kinds_shapes(self, saus_pipeline_and_corpus):
        pipeline, train, _ = saus_pipeline_and_corpus
        table = train[0].table
        labels = predicted_bootstrap(pipeline.classifier, table)
        assert len(labels.row_kinds) == table.n_rows
        assert len(labels.col_kinds) == table.n_cols
        assert all(k is not None for k in labels.row_kinds)

    def test_cmd_becomes_metadata(self, saus_pipeline_and_corpus):
        """CMD predictions feed the metadata pool (they are metadata)."""
        pipeline, train, _ = saus_pipeline_and_corpus
        for item in train[:20]:
            labels = predicted_bootstrap(pipeline.classifier, item.table)
            assert all(
                kind in (LevelKind.HMD, LevelKind.DATA)
                for kind in labels.row_kinds
            )


class TestRefine:
    def test_requires_fitted(self, simple_table):
        with pytest.raises(ValueError):
            refine_self_training(MetadataPipeline(), [simple_table])

    def test_requires_corpus(self, saus_pipeline_and_corpus):
        pipeline, _, _ = saus_pipeline_and_corpus
        with pytest.raises(ValueError):
            refine_self_training(pipeline, [])

    def test_requires_positive_iterations(self, saus_pipeline_and_corpus):
        pipeline, train, _ = saus_pipeline_and_corpus
        with pytest.raises(ValueError):
            refine_self_training(pipeline, train, iterations=0)

    def test_original_untouched(self, saus_pipeline_and_corpus):
        pipeline, train, _ = saus_pipeline_and_corpus
        original_rows = pipeline.row_centroids
        refined = refine_self_training(pipeline, train[:40])
        assert pipeline.row_centroids is original_rows
        assert refined is not pipeline
        assert refined.embedder is pipeline.embedder  # shared, by design

    def test_populates_deep_level_stats(self, saus_pipeline_and_corpus):
        """The headline benefit: first-level bootstrap has no level-2
        statistics; the refined centroids do."""
        pipeline, train, _ = saus_pipeline_and_corpus
        assert pipeline.row_centroids.stats_for_level(2) is None
        refined = refine_self_training(pipeline, train)
        stats = refined.row_centroids.stats_for_level(2)
        assert stats is not None
        assert stats.delta_prev_meta is not None

    def test_accuracy_not_destroyed(self, saus_pipeline_and_corpus):
        pipeline, train, evaluation = saus_pipeline_and_corpus
        refined = refine_self_training(pipeline, train)
        before = evaluate_corpus(evaluation, pipeline.classify)
        after = evaluate_corpus(evaluation, refined.classify)
        assert after.hmd_accuracy[1] >= before.hmd_accuracy[1] - 0.1
        assert after.row_binary_accuracy >= before.row_binary_accuracy - 0.1

    def test_multiple_iterations(self, saus_pipeline_and_corpus):
        pipeline, train, _ = saus_pipeline_and_corpus
        refined = refine_self_training(pipeline, train[:30], iterations=2)
        assert refined.is_fitted

    def test_bare_tables_accepted(self, saus_pipeline_and_corpus):
        pipeline, train, _ = saus_pipeline_and_corpus
        tables = [item.table for item in train[:20]]
        refined = refine_self_training(pipeline, tables)
        assert refined.is_fitted
