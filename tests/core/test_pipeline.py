"""Tests for the end-to-end pipeline and the hybrid classifier."""

from __future__ import annotations

import pytest

from repro.core.metrics import evaluate_corpus
from repro.core.pipeline import (
    HybridClassifier,
    MetadataPipeline,
    PipelineConfig,
    looks_relational,
)
from repro.corpus.vocabularies import get_domain
from repro.embeddings.contextual import ContextualConfig
from repro.embeddings.word2vec import Word2VecConfig
from repro.tables.model import Table


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            PipelineConfig(embedding="glove")
        with pytest.raises(ValueError):
            PipelineConfig(bootstrap="oracle")
        with pytest.raises(ValueError):
            PipelineConfig(n_pairs=2)


class TestFit:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            MetadataPipeline().fit([])

    def test_unfitted_classify_raises(self, simple_table):
        with pytest.raises(RuntimeError):
            MetadataPipeline().classify(simple_table)

    def test_hashed_fit_populates_state(self, hashed_pipeline):
        assert hashed_pipeline.is_fitted
        assert hashed_pipeline.row_centroids is not None
        assert hashed_pipeline.col_centroids is not None
        assert hashed_pipeline.embedder is not None
        assert hashed_pipeline.fit_report is not None
        assert hashed_pipeline.fit_report.total_seconds > 0

    def test_contrastive_off_means_no_projection(self, hashed_pipeline):
        assert hashed_pipeline.projection is None  # fixture disables it

    def test_contrastive_on_builds_projection(self, ckg_train):
        fields = get_domain("biomedical").field_map()
        config = PipelineConfig(
            embedding="hashed", hashed_fields=fields, n_pairs=100
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:20])
        assert pipeline.projection is not None

    def test_bare_tables_accepted(self, ckg_train):
        tables = [item.table for item in ckg_train[:15]]
        config = PipelineConfig(embedding="hashed", n_pairs=50)
        pipeline = MetadataPipeline(config).fit(tables)
        assert pipeline.is_fitted

    def test_first_level_bootstrap_mode(self, ckg_train):
        config = PipelineConfig(
            embedding="hashed", bootstrap="first_level", n_pairs=50
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:15])
        assert pipeline.is_fitted


class TestClassification:
    def test_annotation_shape(self, hashed_pipeline, ckg_eval):
        table = ckg_eval[0].table
        annotation = hashed_pipeline.classify(table)
        assert len(annotation.row_labels) == table.n_rows
        assert len(annotation.col_labels) == table.n_cols

    def test_corpus_accuracy(self, hashed_pipeline, ckg_eval):
        """Field-aware hashed embeddings should score very well on the
        generator corpus — the oracle-ish upper bound."""
        result = evaluate_corpus(ckg_eval, hashed_pipeline.classify)
        assert result.hmd_accuracy[1] >= 0.85
        assert result.vmd_accuracy[1] >= 0.85

    def test_classify_corpus(self, hashed_pipeline, ckg_eval):
        tables = [item.table for item in ckg_eval[:5]]
        annotations = hashed_pipeline.classify_corpus(tables)
        assert len(annotations) == 5

    def test_classify_result_evidence(self, hashed_pipeline, ckg_eval):
        result = hashed_pipeline.classify_result(ckg_eval[0].table)
        assert result.row_evidence
        assert result.col_evidence


class TestTrainedBackends:
    """Small but real training runs for the word2vec/contextual paths."""

    def test_word2vec_backend(self, ckg_train, ckg_eval):
        config = PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=24, epochs=1, seed=0),
            n_pairs=100,
        )
        pipeline = MetadataPipeline(config).fit(ckg_train)
        result = evaluate_corpus(ckg_eval[:10], pipeline.classify)
        assert result.n_tables == 10  # runs end to end

    def test_contextual_backend(self, ckg_train):
        config = PipelineConfig(
            embedding="contextual",
            contextual=ContextualConfig(dim=16, attention_dim=8, epochs=1),
            n_pairs=100,
        )
        pipeline = MetadataPipeline(config).fit(ckg_train[:15])
        annotation = pipeline.classify(ckg_train[0].table)
        assert len(annotation.row_labels) == ckg_train[0].table.n_rows


class TestLooksRelational:
    def test_relational(self):
        table = Table(
            [["name", "score"], ["alpha", "1"], ["beta", "2"], ["gamma", "3"]]
        )
        assert looks_relational(table)

    def test_numeric_first_row(self):
        table = Table([["1", "2"], ["3", "4"], ["5", "6"]])
        assert not looks_relational(table)

    def test_hierarchical_blanks(self):
        table = Table(
            [["state", "x"], ["NY", "1"], ["", "2"], ["", "3"]]
        )
        assert not looks_relational(table)

    def test_textual_body(self):
        table = Table([["a", "b"], ["x", "y"], ["z", "w"]])
        assert not looks_relational(table)

    def test_single_row(self):
        assert not looks_relational(Table([["a", "b"]]))


class TestHybrid:
    def test_requires_fitted(self):
        with pytest.raises(ValueError):
            HybridClassifier(MetadataPipeline())

    def test_routing(self, hashed_pipeline):
        hybrid = HybridClassifier(hashed_pipeline)
        relational = Table(
            [["name", "score"], ["alpha", "1"], ["beta", "2"], ["gamma", "3"]]
        )
        gst = Table(
            [["age", "total"], ["acute", "alpha"], ["", "beta"], ["", "gamma"]]
        )
        fast = hybrid.classify(relational)
        assert fast.hmd_depth == 1
        hybrid.classify(gst)
        assert hybrid.fast_path_count == 1
        assert hybrid.full_path_count == 1

    def test_custom_fast_path(self, hashed_pipeline):
        calls = []

        def fast(table):
            calls.append(table)
            from repro.tables.labels import TableAnnotation

            return TableAnnotation.from_depths(
                table.n_rows, table.n_cols, hmd_depth=1
            )

        hybrid = HybridClassifier(hashed_pipeline, fast_classify=fast)
        relational = Table(
            [["name", "score"], ["alpha", "1"], ["beta", "2"], ["gamma", "3"]]
        )
        hybrid.classify(relational)
        assert len(calls) == 1
