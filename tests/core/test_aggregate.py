"""Tests for aggregated level vectors (Def. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import (
    AggregationConfig,
    aggregate_cols,
    aggregate_level,
    aggregate_rows,
)
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.tables.model import Table


@pytest.fixture
def embedder() -> TermEmbedder:
    return TermEmbedder(HashedEmbedding(8))


class TestConfig:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AggregationConfig(mode="median")

    def test_invalid_concat_terms(self):
        with pytest.raises(ValueError):
            AggregationConfig(mode="concat", concat_terms=0)


class TestSum:
    def test_sum_of_term_vectors(self, embedder):
        out = aggregate_level(embedder, ["alpha beta"])
        expected = embedder.vector("alpha") + embedder.vector("beta")
        np.testing.assert_allclose(out, expected)

    def test_empty_level_is_zero(self, embedder):
        out = aggregate_level(embedder, ["", ""])
        assert np.all(out == 0)
        assert out.shape == (8,)

    def test_order_invariance(self, embedder):
        a = aggregate_level(embedder, ["x", "y"])
        b = aggregate_level(embedder, ["y", "x"])
        np.testing.assert_allclose(a, b)


class TestMean:
    def test_mean_scales_sum(self, embedder):
        config = AggregationConfig(mode="mean")
        summed = aggregate_level(embedder, ["alpha beta"])
        mean = aggregate_level(embedder, ["alpha beta"], config)
        np.testing.assert_allclose(mean, summed / 2)

    def test_same_direction_as_sum(self, embedder):
        """Mean and sum differ in magnitude only -> identical angles."""
        config = AggregationConfig(mode="mean")
        summed = aggregate_level(embedder, ["a b c"])
        mean = aggregate_level(embedder, ["a b c"], config)
        cos = summed @ mean / (np.linalg.norm(summed) * np.linalg.norm(mean))
        assert cos == pytest.approx(1.0)


class TestConcat:
    def test_dimension(self, embedder):
        config = AggregationConfig(mode="concat", concat_terms=3)
        out = aggregate_level(embedder, ["a b"], config)
        assert out.shape == (24,)

    def test_zero_padding(self, embedder):
        config = AggregationConfig(mode="concat", concat_terms=3)
        out = aggregate_level(embedder, ["a"], config)
        assert np.all(out[8:] == 0)
        np.testing.assert_allclose(out[:8], embedder.vector("a"))

    def test_truncation(self, embedder):
        config = AggregationConfig(mode="concat", concat_terms=2)
        out = aggregate_level(embedder, ["a b c d"], config)
        assert out.shape == (16,)

    def test_empty_level(self, embedder):
        config = AggregationConfig(mode="concat", concat_terms=2)
        assert aggregate_level(embedder, [""], config).shape == (16,)

    def test_order_sensitivity(self, embedder):
        """Unlike summation, concatenation depends on term order."""
        config = AggregationConfig(mode="concat", concat_terms=2)
        a = aggregate_level(embedder, ["x y"], config)
        b = aggregate_level(embedder, ["y x"], config)
        assert not np.allclose(a, b)


class TestTableAggregation:
    def test_rows_shape(self, embedder, simple_table):
        out = aggregate_rows(embedder, simple_table)
        assert out.shape == (simple_table.n_rows, 8)

    def test_cols_shape(self, embedder, simple_table):
        out = aggregate_cols(embedder, simple_table)
        assert out.shape == (simple_table.n_cols, 8)

    def test_cols_match_transposed_rows(self, embedder, simple_table):
        cols = aggregate_cols(embedder, simple_table)
        rows_of_t = aggregate_rows(embedder, simple_table.transpose())
        np.testing.assert_allclose(cols, rows_of_t)

    def test_empty_table(self, embedder):
        assert aggregate_rows(embedder, Table([])).shape == (0, 8)
        assert aggregate_cols(embedder, Table([])).shape == (0, 8)


class TestContextual:
    def test_contextual_path_used(self):
        """With contextual=True and an encoder backend, aggregation uses
        encode_sentence; result differs from static lookup."""
        from repro.embeddings.contextual import ContextualConfig, ContextualEncoder

        corpus = [["a", "b", "c"], ["b", "c", "d"], ["a", "d"]] * 5
        encoder = ContextualEncoder(
            ContextualConfig(dim=8, attention_dim=4, epochs=1, seed=0)
        ).fit(corpus)
        embedder = TermEmbedder(encoder)
        static = aggregate_level(embedder, ["a b"])
        contextual = aggregate_level(
            embedder, ["a b"], AggregationConfig(contextual=True)
        )
        assert static.shape == contextual.shape
        assert not np.allclose(static, contextual)

    def test_contextual_falls_back_on_oov(self):
        from repro.embeddings.contextual import ContextualConfig, ContextualEncoder

        encoder = ContextualEncoder(
            ContextualConfig(dim=8, attention_dim=4, epochs=1, seed=0)
        ).fit([["x", "y"]] * 3)
        embedder = TermEmbedder(encoder)
        out = aggregate_level(
            embedder, ["unseen words"], AggregationConfig(contextual=True)
        )
        assert out.shape == (8,)
        assert not np.all(out == 0)  # ngram back-off supplied vectors
