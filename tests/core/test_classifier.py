"""Tests for Algorithm 1 (the angle-based classifier)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.angles import AngleRange
from repro.core.centroids import CentroidSet
from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.core.contrastive import ContrastiveConfig, ContrastiveProjection
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.tables.labels import LevelKind
from repro.tables.model import Table

FIELDS = {
    # header vocabulary
    "age": "attr", "duration": "attr", "severity": "attr", "total": "attr",
    "gender": "attr", "onset": "attr", "category": "attr", "status": "attr",
    # VMD category vocabulary (same field as attr: categories are metadata)
    "acute": "attr", "chronic": "attr", "mild": "attr", "severe": "attr",
    # entity vocabulary
    "alpha": "entity", "beta": "entity", "gamma": "entity", "delta": "entity",
}


def _embedder() -> TermEmbedder:
    return TermEmbedder(HashedEmbedding(16, fields=FIELDS, field_weight=0.85))


def _centroids(embedder: TermEmbedder) -> CentroidSet:
    """Analytic centroids for the hashed field geometry."""
    meta_ref = embedder.vector("age") + embedder.vector("duration")
    data_ref = embedder.vector("1234") + embedder.vector("alpha")
    meta_ref = meta_ref / np.linalg.norm(meta_ref)
    data_ref = data_ref / np.linalg.norm(data_ref)
    return CentroidSet(
        mde=AngleRange(0, 35),
        de=AngleRange(0, 60),
        mde_de=AngleRange(45, 120),
        meta_ref=meta_ref,
        data_ref=data_ref,
    )


@pytest.fixture
def classifier() -> MetadataClassifier:
    embedder = _embedder()
    centroids = _centroids(embedder)
    return MetadataClassifier(embedder, centroids, centroids)


def _gst(n_header: int = 2, n_data: int = 4, vmd: bool = True) -> Table:
    rng = np.random.default_rng(0)
    attrs = ["age", "duration", "severity", "total", "gender", "onset"]
    cats = ["acute", "chronic", "mild", "severe"]
    ents = ["alpha", "beta", "gamma", "delta"]
    rows = []
    for _ in range(n_header):
        row = ([""] if vmd else []) + list(rng.choice(attrs, size=3))
        rows.append(row)
    for _ in range(n_data):
        row = ([str(rng.choice(cats))] if vmd else []) + [
            str(rng.integers(0, 9999)),
            str(rng.integers(0, 9999)),
            str(rng.choice(ents)),
        ]
        rows.append(row)
    return Table(rows)


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            ClassifierConfig(max_hmd_depth=0)
        with pytest.raises(ValueError):
            ClassifierConfig(range_margin=-1)


class TestRowWalk:
    def test_single_header(self, classifier):
        table = _gst(n_header=1, vmd=False)
        annotation = classifier.classify(table)
        assert annotation.hmd_depth == 1
        assert annotation.row_labels[1].kind is LevelKind.DATA

    def test_two_headers(self, classifier):
        annotation = classifier.classify(_gst(n_header=2, vmd=False))
        assert annotation.hmd_depth == 2
        assert annotation.row_labels[1].level == 2

    def test_depth_cap(self):
        embedder = _embedder()
        centroids = _centroids(embedder)
        config = ClassifierConfig(max_hmd_depth=2)
        classifier = MetadataClassifier(embedder, centroids, centroids, config=config)
        annotation = classifier.classify(_gst(n_header=4, vmd=False))
        assert annotation.hmd_depth == 2

    def test_depth_helpers(self, classifier):
        table = _gst(n_header=2)
        assert classifier.hmd_depth(table) == 2
        assert classifier.vmd_depth(table) == 1


class TestColumnWalk:
    def test_vmd_detected(self, classifier):
        annotation = classifier.classify(_gst())
        assert annotation.vmd_depth == 1
        assert annotation.col_labels[1].kind is LevelKind.DATA

    def test_no_vmd(self, classifier):
        annotation = classifier.classify(_gst(vmd=False))
        assert annotation.vmd_depth == 0

    def test_no_cmd_in_columns(self, classifier):
        """Columns never get CMD labels (Def. 4 defines CMD for rows)."""
        annotation = classifier.classify(_gst())
        assert all(
            label.kind is not LevelKind.CMD for label in annotation.col_labels
        )


class TestEvidence:
    def test_evidence_per_level(self, classifier):
        table = _gst(n_header=2)
        result = classifier.classify_result(table)
        assert len(result.row_evidence) == table.n_rows
        assert len(result.col_evidence) == table.n_cols
        assert result.row_evidence[0].angle_to_prev is None
        assert result.row_evidence[1].angle_to_prev is not None
        assert all(e.rule for e in result.row_evidence)

    def test_labels_match_annotation(self, classifier):
        result = classifier.classify_result(_gst())
        for evidence, label in zip(
            result.row_evidence, result.annotation.row_labels
        ):
            assert evidence.label == label


class TestProjectionIntegration:
    def test_projection_changes_vectors_not_interface(self):
        embedder = _embedder()
        centroids = _centroids(embedder)
        projection = ContrastiveProjection(16, ContrastiveConfig(seed=1))
        classifier = MetadataClassifier(
            embedder, centroids, centroids, projection=projection
        )
        annotation = classifier.classify(_gst())
        assert annotation.hmd_depth >= 0  # runs end to end


class TestEdgeCases:
    def test_empty_like_table(self, classifier):
        table = Table([["", ""], ["", ""]])
        annotation = classifier.classify(table)
        assert len(annotation.row_labels) == 2

    def test_all_numeric_table(self, classifier):
        table = Table([["1", "2"], ["3", "4"], ["5", "6"]])
        annotation = classifier.classify(table)
        # No header signal anywhere: the first row should not start a
        # metadata block (refs put numbers firmly on the data side).
        assert annotation.hmd_depth == 0

    def test_single_row(self, classifier):
        annotation = classifier.classify(Table([["age", "total"]]))
        assert len(annotation.row_labels) == 1
