"""Tests for bootstrap labeling from HTML markup."""

from __future__ import annotations

import pytest

from repro.core.bootstrap import (
    BootstrapLabels,
    bootstrap_corpus,
    bootstrap_first_level,
    bootstrap_from_html,
)
from repro.tables.html import render_html_table
from repro.tables.labels import LevelKind
from repro.tables.model import AnnotatedTable, Table


class TestFromHtml:
    def test_clean_markup_recovers_labels(
        self, hierarchical_table, hierarchical_annotation
    ):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        labels = bootstrap_from_html(html)
        assert labels.metadata_row_indices == (0, 1)
        assert 0 in labels.metadata_col_indices

    def test_th_without_thead(self):
        html = (
            "<table><tbody>"
            "<tr><th>a</th><th>b</th></tr>"
            "<tr><td>1</td><td>2</td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html)
        assert labels.row_kinds[0] is LevelKind.HMD
        assert labels.row_kinds[1] is LevelKind.DATA

    def test_partial_th_below_threshold(self):
        html = (
            "<table><tbody>"
            "<tr><th>a</th><td>b</td><td>c</td></tr>"
            "<tr><td>1</td><td>2</td><td>3</td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html, th_threshold=0.5)
        assert labels.row_kinds[0] is LevelKind.DATA

    def test_bold_first_column_is_vmd(self):
        html = (
            "<table><tbody>"
            "<tr><td><b>NY</b></td><td>1</td></tr>"
            "<tr><td><b>IN</b></td><td>2</td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html)
        assert labels.col_kinds[0] is LevelKind.VMD
        assert labels.col_kinds[1] is LevelKind.DATA

    def test_hierarchical_blanks_first_column(self):
        html = (
            "<table><tbody>"
            "<tr><td>NY</td><td>1</td></tr>"
            "<tr><td></td><td>2</td></tr>"
            "<tr><td></td><td>3</td></tr>"
            "<tr><td>IN</td><td>4</td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html)
        assert labels.col_kinds[0] is LevelKind.VMD

    def test_vmd_columns_contiguous(self):
        # Bold in column 2 but plain column 1: VMD stops at column 0.
        html = (
            "<table><tbody>"
            "<tr><td><b>a</b></td><td>x</td><td><b>q</b></td></tr>"
            "<tr><td><b>b</b></td><td>y</td><td><b>r</b></td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html)
        assert labels.col_kinds[0] is LevelKind.VMD
        assert labels.col_kinds[1] is LevelKind.DATA
        assert labels.col_kinds[2] is LevelKind.DATA

    def test_all_vmd_signal_dropped(self):
        html = (
            "<table><tbody>"
            "<tr><td><b>a</b></td><td><b>x</b></td></tr>"
            "<tr><td><b>b</b></td><td><b>y</b></td></tr>"
            "</tbody></table>"
        )
        labels = bootstrap_from_html(html, max_vmd_cols=2)
        assert all(k is LevelKind.DATA for k in labels.col_kinds)


class TestFirstLevel:
    def test_first_row_and_col(self, simple_table):
        labels = bootstrap_first_level(simple_table)
        assert labels.metadata_row_indices == (0,)
        assert labels.metadata_col_indices == (0,)
        # Only the far half is confidently data; the near-boundary
        # levels stay unlabeled (they may be undetected deep metadata).
        assert labels.data_row_indices == (2, 3)
        assert labels.data_col_indices == (2, 3)
        assert labels.row_kinds[1] is None
        assert labels.col_kinds[1] is None

    def test_tall_table_split(self):
        from repro.tables.model import Table

        table = Table([[str(i), "x"] for i in range(10)])
        labels = bootstrap_first_level(table)
        assert labels.data_row_indices == (5, 6, 7, 8, 9)
        assert all(k is None for k in labels.row_kinds[1:5])

    def test_has_metadata(self, simple_table):
        assert bootstrap_first_level(simple_table).has_metadata


class TestCorpus:
    def test_mixed_sources(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        with_html = AnnotatedTable(
            table=hierarchical_table, annotation=hierarchical_annotation, html=html
        )
        without_html = AnnotatedTable(
            table=hierarchical_table, annotation=hierarchical_annotation
        )
        labels = bootstrap_corpus([with_html, without_html, hierarchical_table])
        assert len(labels) == 3
        # item 1 used markup: two header rows; items 2-3 fell back.
        assert len(labels[0].metadata_row_indices) == 2
        assert labels[1].metadata_row_indices == (0,)
        assert labels[2].metadata_row_indices == (0,)

    def test_prefer_html_off(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        item = AnnotatedTable(
            table=hierarchical_table, annotation=hierarchical_annotation, html=html
        )
        labels = bootstrap_corpus([item], prefer_html=False)
        assert labels[0].metadata_row_indices == (0,)


class TestValidation:
    def test_shape_mismatch_rejected(self, simple_table):
        with pytest.raises(ValueError):
            BootstrapLabels(simple_table, (LevelKind.HMD,), tuple())
