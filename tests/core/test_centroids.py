"""Tests for centroid estimation (Defs. 11-13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_first_level, bootstrap_corpus
from repro.core.centroids import CentroidSet, estimate_centroids
from repro.embeddings.hashed import HashedEmbedding
from repro.embeddings.lookup import TermEmbedder
from repro.tables.html import render_html_table
from repro.tables.labels import TableAnnotation
from repro.tables.model import AnnotatedTable, Table


FIELDS = {
    "age": "attr", "duration": "attr", "severity": "attr", "total": "attr",
    "onset": "attr", "count": "attr",
    "alpha": "entity", "beta": "entity", "gamma": "entity", "delta": "entity",
}


@pytest.fixture
def embedder() -> TermEmbedder:
    return TermEmbedder(HashedEmbedding(16, fields=FIELDS, field_weight=0.8))


def _make_corpus(n: int = 8) -> list[AnnotatedTable]:
    rng = np.random.default_rng(3)
    attrs = ["age", "duration", "severity", "total", "onset", "count"]
    ents = ["alpha", "beta", "gamma", "delta"]
    corpus = []
    for i in range(n):
        header1 = list(rng.choice(attrs, size=3))
        header2 = list(rng.choice(attrs, size=3))
        rows = [header1, header2]
        for _ in range(4):
            rows.append([str(rng.integers(0, 9999)), str(rng.integers(0, 9999)),
                         str(rng.choice(ents))])
        table = Table(rows, name=f"t{i}")
        ann = TableAnnotation.from_depths(6, 3, hmd_depth=2, vmd_depth=0)
        html = render_html_table(table, ann)
        corpus.append(AnnotatedTable(table=table, annotation=ann, html=html))
    return corpus


class TestEstimation:
    def test_basic_structure(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        centroids = estimate_centroids(embedder, labeled, axis="rows")
        assert isinstance(centroids, CentroidSet)
        assert centroids.n_tables == 8
        assert centroids.meta_ref.shape == (16,)
        assert np.isclose(np.linalg.norm(centroids.meta_ref), 1.0)
        assert np.isclose(np.linalg.norm(centroids.data_ref), 1.0)

    def test_metadata_data_separation(self, embedder):
        """The core geometric claim: C_MDE sits below C_MDE-DE."""
        labeled = bootstrap_corpus(_make_corpus())
        centroids = estimate_centroids(embedder, labeled, axis="rows")
        assert centroids.mde.midpoint < centroids.mde_de.midpoint

    def test_level_stats_present(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        centroids = estimate_centroids(embedder, labeled, axis="rows")
        stats2 = centroids.stats_for_level(2)
        assert stats2 is not None
        assert stats2.delta_prev_meta is not None
        assert stats2.delta_to_data is not None
        assert stats2.n_tables == 8
        stats1 = centroids.stats_for_level(1)
        assert stats1.delta_prev_meta is None  # no level 0

    def test_stats_for_missing_level(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        centroids = estimate_centroids(embedder, labeled, axis="rows")
        assert centroids.stats_for_level(5) is None

    def test_invalid_axis(self, embedder):
        with pytest.raises(ValueError):
            estimate_centroids(embedder, [], axis="diagonal")

    def test_empty_corpus_falls_back(self, embedder):
        centroids = estimate_centroids(embedder, [], axis="rows")
        assert centroids.n_tables == 0
        assert centroids.mde.width > 0  # fallback ranges

    def test_min_range_width_enforced(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        centroids = estimate_centroids(
            embedder, labeled, axis="rows", min_range_width=25.0
        )
        assert centroids.mde.width >= 20.0  # width after clipping at 0

    def test_transform_applied(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        flip = lambda v: -v  # noqa: E731 - direction flip keeps angles
        plain = estimate_centroids(embedder, labeled, axis="rows")
        flipped = estimate_centroids(embedder, labeled, axis="rows", transform=flip)
        np.testing.assert_allclose(flipped.meta_ref, -plain.meta_ref)
        assert flipped.mde.midpoint == pytest.approx(plain.mde.midpoint)

    def test_describe_renders(self, embedder):
        labeled = bootstrap_corpus(_make_corpus())
        text = estimate_centroids(embedder, labeled, axis="rows").describe()
        assert "C_MDE" in text
        assert "level 2" in text


class TestFirstLevelBootstrap:
    def test_cross_table_mde(self, embedder):
        """With one metadata level per table, C_MDE must come from
        cross-table pairs rather than the fallback constant."""
        corpus = [item.table for item in _make_corpus(10)]
        labeled = [bootstrap_first_level(t) for t in corpus]
        centroids = estimate_centroids(embedder, labeled, axis="rows")
        # attr-field header rows across tables are tightly clustered, so
        # the cross-table range must sit well below the fallback hi=45.
        assert centroids.mde.lo < 30.0

    def test_columns_axis(self, embedder):
        corpus = [item.table for item in _make_corpus(6)]
        labeled = [bootstrap_first_level(t) for t in corpus]
        centroids = estimate_centroids(embedder, labeled, axis="cols")
        assert centroids.n_tables == 6


class TestSeedDeterminism:
    """Regression: cross-table pair sampling used to seed its RNG from
    ``len(pool)``, so the estimated ranges drifted with corpus size and
    ignored the configured seed.  The sampler now derives its stream
    from the ``seed`` parameter (salted per sampling site)."""

    def _centroids(self, embedder, **kwargs):
        corpus = [item.table for item in _make_corpus(10)]
        labeled = [bootstrap_first_level(t) for t in corpus]
        return estimate_centroids(embedder, labeled, axis="rows", **kwargs)

    def test_same_seed_is_bitwise_reproducible(self, embedder):
        a = self._centroids(embedder, seed=7)
        b = self._centroids(embedder, seed=7)
        assert (a.mde.lo, a.mde.hi) == (b.mde.lo, b.mde.hi)
        assert (a.de.lo, a.de.hi) == (b.de.lo, b.de.hi)
        assert (a.mde_de.lo, a.mde_de.hi) == (b.mde_de.lo, b.mde_de.hi)

    def test_seed_reaches_the_sampler(self, embedder):
        a = self._centroids(embedder, seed=7)
        c = self._centroids(embedder, seed=8)
        assert (a.mde.lo, a.mde.hi) != (c.mde.lo, c.mde.hi)

    def test_pinned_outputs(self, embedder):
        """Pin the sampled MDE range for two seeds.  A change here means
        the seed derivation changed — bump deliberately or fix the
        regression."""
        default = self._centroids(embedder)  # seed=0
        assert default.mde.lo == pytest.approx(0.0, abs=1e-9)
        assert default.mde.hi == pytest.approx(14.185169801570265, rel=1e-9)
        seeded = self._centroids(embedder, seed=7)
        assert seeded.mde.hi == pytest.approx(17.68640424994657, rel=1e-9)
