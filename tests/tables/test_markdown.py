"""Tests for markdown pipe-table parsing and rendering."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tables.labels import TableAnnotation
from repro.tables.markdown import table_from_markdown, table_to_markdown
from repro.tables.model import Table


MD = """\
Some prose before the table.

| Name  | Score | Year |
| ----- | :---: | ---: |
| alpha | 12    | 2001 |
| beta  | 34    | 2002 |

Prose after.
"""


class TestParse:
    def test_basic(self):
        table = table_from_markdown(MD, name="t")
        assert table.shape == (3, 3)
        assert table.row(0) == ("Name", "Score", "Year")
        assert table.cell(2, 0) == "beta"
        assert table.name == "t"

    def test_separator_dropped(self):
        table = table_from_markdown(MD)
        assert not any("---" in cell for _, _, cell in table.iter_cells())

    def test_alignment_colons_ok(self):
        table = table_from_markdown("| a |\n|:---:|\n| 1 |")
        assert table.shape == (2, 1)

    def test_no_table_raises(self):
        with pytest.raises(ValueError):
            table_from_markdown("just words, no pipes")

    def test_escaped_pipe(self):
        table = table_from_markdown("| a\\|b | c |\n| --- | --- |\n| 1 | 2 |")
        assert table.cell(0, 0) == "a|b"

    def test_missing_outer_pipes(self):
        table = table_from_markdown("a | b\n--- | ---\n1 | 2")
        assert table.shape == (2, 2)

    def test_stops_at_blank_after_table(self):
        text = MD + "\n| orphan | row |\n"
        table = table_from_markdown(text)
        assert table.n_rows == 3  # the later fragment is a new block


class TestRender:
    def test_round_trip(self):
        table = Table([["Name", "Score"], ["alpha", "12"], ["beta", "34"]])
        back = table_from_markdown(table_to_markdown(table))
        assert back.rows == table.rows

    def test_pipe_escaping_round_trip(self):
        table = Table([["a|b", "c"], ["1", "2"]])
        back = table_from_markdown(table_to_markdown(table))
        assert back.rows == table.rows

    def test_annotation_positions_separator(self):
        table = Table([["G", ""], ["a", "b"], ["1", "2"]])
        annotation = TableAnnotation.from_depths(3, 2, hmd_depth=2)
        text = table_to_markdown(table, annotation=annotation)
        lines = text.splitlines()
        assert "---" in lines[2]  # separator under the 2-row header

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            table_to_markdown(Table([]))

    def test_annotation_shape_checked(self):
        table = Table([["a"], ["1"]])
        with pytest.raises(ValueError):
            table_to_markdown(
                table, annotation=TableAnnotation.from_depths(3, 1, hmd_depth=1)
            )


cells = st.text(alphabet="abc123 ", min_size=1, max_size=6).map(str.strip).filter(bool)


@given(st.lists(st.lists(cells, min_size=1, max_size=4), min_size=2, max_size=5))
def test_round_trip_property(raw):
    table = Table(raw)
    back = table_from_markdown(table_to_markdown(table))
    assert back.rows == table.rows
