"""Tests for HTML rendering and parsing of tables."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.tables.html import parse_html_table, render_html_table
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


class TestRender:
    def test_header_rows_in_thead_with_th(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        assert html.startswith("<table>")
        assert "<thead>" in html
        head = html.split("</thead>")[0]
        assert head.count("<tr>") == 2  # two HMD rows
        assert "<th>" in head

    def test_vmd_cells_bold(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        body = html.split("<tbody>")[1]
        assert "<b>12 to 15 years</b>" in body

    def test_vmd_indent_per_level(self):
        table = Table([["h1", "h2", "x"], ["a", "b", "1"]])
        ann = TableAnnotation.from_depths(2, 3, hmd_depth=1, vmd_depth=2)
        html = render_html_table(table, ann)
        assert "&nbsp;&nbsp;<b>b</b>" in html
        assert "<td><b>a</b></td>" in html  # level 1: no indent

    def test_escaping(self):
        table = Table([["a<b", "x&y"], ["1", "2"]])
        ann = TableAnnotation.from_depths(2, 2, hmd_depth=1)
        html = render_html_table(table, ann)
        assert "a&lt;b" in html
        assert "x&amp;y" in html

    def test_no_headers_no_thead(self):
        table = Table([["1", "2"], ["3", "4"]])
        ann = TableAnnotation.from_depths(2, 2)
        html = render_html_table(table, ann)
        assert "<thead>" not in html


class TestParse:
    def test_round_trip_grid(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        parsed = parse_html_table(html)
        assert parsed.to_table().rows == hierarchical_table.rows

    def test_thead_rows_detected(self, hierarchical_table, hierarchical_annotation):
        html = render_html_table(hierarchical_table, hierarchical_annotation)
        parsed = parse_html_table(html)
        assert parsed.thead_rows == {0, 1}
        assert parsed.th_fraction(0) == 1.0
        assert parsed.th_fraction(2) == 0.0

    def test_bold_and_indent_signals(self):
        table = Table([["h1", "h2", "x"], ["a", "b", "1"], ["c", "d", "2"]])
        ann = TableAnnotation.from_depths(3, 3, hmd_depth=1, vmd_depth=2)
        parsed = parse_html_table(render_html_table(table, ann))
        assert parsed.bold_or_indent_fraction(0) > 0.5
        assert parsed.bold_or_indent_fraction(2) == 0.0
        # level-2 cells carry the nbsp indent
        assert parsed.cells[1][1].indent > 0

    def test_blank_fraction(self):
        table = Table([["h", "x"], ["a", "1"], ["", "2"], ["", "3"]])
        ann = TableAnnotation.from_depths(4, 2, hmd_depth=1, vmd_depth=1)
        parsed = parse_html_table(render_html_table(table, ann))
        assert parsed.blank_fraction(0) == 0.5

    def test_malformed_html_tolerated(self):
        parsed = parse_html_table("<table><tr><td>a<td>b</tr><tr><td>c</table>")
        assert parsed.n_rows == 2
        assert parsed.cells[0][0].text == "a"
        assert parsed.cells[0][1].text == "b"
        assert parsed.cells[1][0].text == "c"

    def test_empty_input(self):
        parsed = parse_html_table("")
        assert parsed.n_rows == 0

    def test_strong_counts_as_bold(self):
        parsed = parse_html_table(
            "<table><tr><td><strong>x</strong></td></tr></table>"
        )
        assert parsed.cells[0][0].is_bold

    def test_nested_tags_inside_cell(self):
        parsed = parse_html_table(
            "<table><tr><td><b>a</b> and <b>b</b></td></tr></table>"
        )
        assert parsed.cells[0][0].text == "a and b"


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

cell_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=12,
).map(lambda s: " ".join(s.split()))


@given(
    st.lists(st.lists(cell_text, min_size=1, max_size=4), min_size=1, max_size=5),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
)
def test_render_parse_round_trip(raw, hmd, vmd):
    table = Table(raw)
    hmd = min(hmd, table.n_rows)
    vmd = min(vmd, table.n_cols)
    ann = TableAnnotation.from_depths(
        table.n_rows, table.n_cols, hmd_depth=hmd, vmd_depth=vmd
    )
    parsed = parse_html_table(render_html_table(table, ann))
    assert parsed.to_table().rows == table.rows
    assert parsed.thead_rows == set(range(hmd))
