"""Tests for annotated table rendering and annotation diffs."""

from __future__ import annotations

import pytest

from repro.tables.labels import TableAnnotation
from repro.tables.model import Table
from repro.tables.render import diff_annotations, render_annotated


@pytest.fixture
def table_and_truth():
    table = Table([["a", "b"], ["1", "2"], ["3", "4"]])
    truth = TableAnnotation.from_depths(3, 2, hmd_depth=1, vmd_depth=1)
    return table, truth


class TestRenderAnnotated:
    def test_labels_in_margin(self, table_and_truth):
        table, truth = table_and_truth
        text = render_annotated(table, truth)
        lines = text.splitlines()
        assert lines[0].strip().startswith("HMD1")
        assert lines[1].strip().startswith("DATA")
        assert lines[-1].strip().startswith("cols")
        assert "VMD1" in lines[-1]

    def test_diff_markers(self, table_and_truth):
        table, truth = table_and_truth
        predicted = TableAnnotation.from_depths(3, 2, hmd_depth=2, vmd_depth=0)
        text = render_annotated(table, predicted, truth=truth)
        assert "!" in text
        assert "≠" in text

    def test_no_markers_when_equal(self, table_and_truth):
        table, truth = table_and_truth
        assert "!" not in render_annotated(table, truth, truth=truth)

    def test_shape_validation(self, table_and_truth):
        table, truth = table_and_truth
        with pytest.raises(ValueError):
            render_annotated(table, TableAnnotation.from_depths(2, 2, hmd_depth=1))
        with pytest.raises(ValueError):
            render_annotated(
                table, truth, truth=TableAnnotation.from_depths(2, 2, hmd_depth=1)
            )

    def test_cell_truncation(self):
        table = Table([["averyveryverylongcellvalue", "x"], ["1", "2"]])
        text = render_annotated(
            table, TableAnnotation.from_depths(2, 2, hmd_depth=1), max_width=8
        )
        assert "averyver |" in text


class TestDiffAnnotations:
    def test_empty_on_match(self, table_and_truth):
        _, truth = table_and_truth
        assert diff_annotations(truth, truth) == []

    def test_reports_rows_and_cols(self, table_and_truth):
        _, truth = table_and_truth
        predicted = TableAnnotation.from_depths(3, 2, hmd_depth=2, vmd_depth=0)
        issues = diff_annotations(predicted, truth)
        assert any(issue.startswith("row 1") for issue in issues)
        assert any(issue.startswith("col 0") for issue in issues)

    def test_shape_mismatch(self, table_and_truth):
        _, truth = table_and_truth
        with pytest.raises(ValueError):
            diff_annotations(truth, TableAnnotation.from_depths(2, 2, hmd_depth=1))
