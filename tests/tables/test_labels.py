"""Tests for level labels and table annotations."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tables.labels import LevelKind, LevelLabel, TableAnnotation


class TestLevelLabel:
    def test_data_has_no_depth(self):
        with pytest.raises(ValueError):
            LevelLabel(LevelKind.DATA, 1)

    def test_metadata_needs_depth(self):
        with pytest.raises(ValueError):
            LevelLabel(LevelKind.HMD, 0)

    def test_constructors(self):
        assert LevelLabel.hmd(2).level == 2
        assert LevelLabel.vmd(1).kind is LevelKind.VMD
        assert LevelLabel.cmd().level == 1
        assert LevelLabel.data().kind is LevelKind.DATA

    def test_str(self):
        assert str(LevelLabel.hmd(3)) == "HMD3"
        assert str(LevelLabel.data()) == "DATA"

    def test_is_metadata(self):
        assert LevelKind.HMD.is_metadata
        assert LevelKind.CMD.is_metadata
        assert not LevelKind.DATA.is_metadata


class TestTableAnnotation:
    def test_vmd_not_allowed_in_rows(self):
        with pytest.raises(ValueError):
            TableAnnotation(row_labels=(LevelLabel.vmd(1),))

    def test_hmd_not_allowed_in_cols(self):
        with pytest.raises(ValueError):
            TableAnnotation(col_labels=(LevelLabel.hmd(1),))

    def test_string_coercion(self):
        ann = TableAnnotation(row_labels=("HMD", "DATA"), col_labels=("VMD",))
        assert ann.row_labels[0] == LevelLabel.hmd(1)
        assert ann.col_labels[0] == LevelLabel.vmd(1)

    def test_from_depths_basic(self):
        ann = TableAnnotation.from_depths(5, 4, hmd_depth=2, vmd_depth=1)
        assert ann.hmd_depth == 2
        assert ann.vmd_depth == 1
        assert ann.row_labels[0].level == 1
        assert ann.row_labels[1].level == 2
        assert ann.row_labels[2].kind is LevelKind.DATA
        assert ann.data_rows == (2, 3, 4)
        assert ann.data_cols == (1, 2, 3)

    def test_from_depths_cmd(self):
        ann = TableAnnotation.from_depths(6, 3, hmd_depth=1, cmd_rows=[3])
        assert ann.cmd_rows == (3,)
        assert 3 not in ann.data_rows

    def test_from_depths_cmd_in_header_rejected(self):
        with pytest.raises(ValueError):
            TableAnnotation.from_depths(6, 3, hmd_depth=2, cmd_rows=[1])

    def test_from_depths_overflow(self):
        with pytest.raises(ValueError):
            TableAnnotation.from_depths(2, 2, hmd_depth=3)
        with pytest.raises(ValueError):
            TableAnnotation.from_depths(2, 2, vmd_depth=3)

    def test_level_queries(self):
        ann = TableAnnotation.from_depths(5, 5, hmd_depth=3, vmd_depth=2)
        assert ann.hmd_rows(2) == (1,)
        assert ann.hmd_rows() == (0, 1, 2)
        assert ann.vmd_cols(1) == (0,)
        assert ann.vmd_cols() == (0, 1)

    def test_hmd_depth_counts_leading_only(self):
        ann = TableAnnotation(
            row_labels=(
                LevelLabel.hmd(1),
                LevelLabel.data(),
                LevelLabel.cmd(1),
            ),
            col_labels=(LevelLabel.data(),),
        )
        assert ann.hmd_depth == 1
        assert ann.cmd_rows == (2,)


class TestTransposed:
    def test_roles_swap(self):
        ann = TableAnnotation.from_depths(4, 3, hmd_depth=2, vmd_depth=1)
        flipped = ann.transposed()
        assert flipped.hmd_depth == 1
        assert flipped.vmd_depth == 2
        assert len(flipped.row_labels) == 3
        assert len(flipped.col_labels) == 4

    def test_cmd_becomes_vmd(self):
        ann = TableAnnotation.from_depths(5, 2, hmd_depth=1, cmd_rows=[3])
        flipped = ann.transposed()
        assert flipped.col_labels[3].kind is LevelKind.VMD

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_double_transpose_preserves_depths(self, rows, cols, hmd, vmd):
        hmd = min(hmd, rows)
        vmd = min(vmd, cols)
        ann = TableAnnotation.from_depths(rows, cols, hmd_depth=hmd, vmd_depth=vmd)
        twice = ann.transposed().transposed()
        assert twice.hmd_depth == ann.hmd_depth
        assert twice.vmd_depth == ann.vmd_depth
