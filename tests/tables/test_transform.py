"""Tests for table transforms (pre-processing, VMD forward-fill)."""

from __future__ import annotations

from repro.tables.model import Table
from repro.tables.transform import (
    drop_empty_levels,
    forward_fill_vmd,
    hierarchy_paths,
    pad_rows,
    standardize,
    transpose,
)


class TestPadRows:
    def test_pads_to_widest(self):
        rows = pad_rows([["a"], ["b", "c"]])
        assert rows == [["a", ""], ["b", "c"]]

    def test_normalizes(self):
        rows = pad_rows([[" a  b ", None]])
        assert rows == [["a b", ""]]

    def test_empty(self):
        assert pad_rows([]) == []


class TestDropEmptyLevels:
    def test_blank_rows_removed(self):
        table = Table([["a", "b"], ["", ""], ["c", "d"]])
        cleaned = drop_empty_levels(table)
        assert cleaned.n_rows == 2

    def test_blank_cols_removed(self):
        table = Table([["a", "", "b"], ["c", "", "d"]])
        cleaned = drop_empty_levels(table)
        assert cleaned.n_cols == 2
        assert cleaned.row(0) == ("a", "b")

    def test_all_blank(self):
        cleaned = drop_empty_levels(Table([["", ""], ["", ""]]))
        assert cleaned.shape == (0, 0)

    def test_meaningful_blanks_kept(self):
        """Hierarchical continuation blanks are not whole blank levels."""
        table = Table([["NY", "x"], ["", "y"]])
        assert drop_empty_levels(table).rows == table.rows


class TestStandardize:
    def test_full_cleanup(self):
        table = standardize([[" a ", None], [], ["1", "2", ""]], name="t")
        assert table.name == "t"
        assert table.n_rows == 2  # the empty raw row is gone
        assert table.row(0) == ("a", "")


class TestTranspose:
    def test_matches_method(self, simple_table):
        assert transpose(simple_table).rows == simple_table.transpose().rows


class TestForwardFill:
    def test_fill_level1(self):
        table = Table(
            [["NY", "Cornell", "19639"],
             ["", "Ithaca", "6409"],
             ["IN", "Ball State", "20030"]]
        )
        filled = forward_fill_vmd(table, 1)
        assert filled.col(0) == ("NY", "NY", "IN")

    def test_fill_respects_depth(self):
        table = Table([["NY", "", "1"], ["", "x", "2"]])
        filled = forward_fill_vmd(table, 1)
        assert filled.cell(1, 1) == "x"  # col 1 untouched
        assert filled.cell(0, 1) == ""

    def test_zero_depth_noop(self, simple_table):
        assert forward_fill_vmd(simple_table, 0).rows == simple_table.rows

    def test_leading_blank_stays(self):
        table = Table([["", "1"], ["a", "2"]])
        filled = forward_fill_vmd(table, 1)
        assert filled.cell(0, 0) == ""


class TestHierarchyPaths:
    def test_intro_example(self):
        """The paper's 'Stony Brook belongs to SUNY belongs to NY' case."""
        table = Table(
            [
                ["State", "System", "Campus", "Enrollment"],
                ["New York", "SUNY", "Albany", "17,434"],
                ["", "", "Stony Brook", "25,000"],
                ["Indiana", "Ball State", "Muncie", "20,030"],
            ]
        )
        paths = hierarchy_paths(table, 3, skip_rows=1)
        assert paths[1] == ("New York", "SUNY", "Stony Brook")
        assert paths[2] == ("Indiana", "Ball State", "Muncie")

    def test_without_skip(self):
        table = Table([["a", "1"], ["", "2"]])
        paths = hierarchy_paths(table, 1)
        assert paths == [("a",), ("a",)]
