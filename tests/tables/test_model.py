"""Tests for the Table / AnnotatedTable data model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tables.labels import TableAnnotation
from repro.tables.model import AnnotatedTable, Table, tables_of


class TestConstruction:
    def test_ragged_rows_pad(self):
        table = Table([["a", "b", "c"], ["d"]])
        assert table.shape == (2, 3)
        assert table.row(1) == ("d", "", "")

    def test_cells_normalize(self):
        table = Table([["  a  b ", None, 42]])
        assert table.row(0) == ("a b", "", "42")

    def test_empty_table(self):
        table = Table([])
        assert table.shape == (0, 0)
        assert not table
        assert list(table.iter_rows()) == []

    def test_name_and_source(self):
        table = Table([["x"]], name="t1", source="ckg")
        assert table.name == "t1"
        assert table.source == "ckg"

    def test_immutability(self):
        table = Table([["a"]])
        with pytest.raises(AttributeError):
            table.rows = ()


class TestAccess:
    def test_row_col_cell(self, simple_table):
        assert simple_table.row(0)[0] == "State"
        assert simple_table.col(0) == ("State", "New York", "New York", "Indiana")
        assert simple_table.cell(1, 2) == "19,639"

    def test_col_out_of_range(self, simple_table):
        with pytest.raises(IndexError):
            simple_table.col(99)

    def test_iter_cols_matches_col(self, simple_table):
        cols = list(simple_table.iter_cols())
        assert cols[2] == simple_table.col(2)

    def test_iter_cells_covers_grid(self, simple_table):
        cells = list(simple_table.iter_cells())
        assert len(cells) == simple_table.n_rows * simple_table.n_cols
        assert cells[0] == (0, 0, "State")

    def test_depth_is_row_count(self, simple_table):
        assert simple_table.depth == 4

    def test_len_and_bool(self, simple_table):
        assert len(simple_table) == 4
        assert simple_table


class TestDerived:
    def test_transpose_shape(self, simple_table):
        flipped = simple_table.transpose()
        assert flipped.shape == (simple_table.n_cols, simple_table.n_rows)
        assert flipped.row(0) == simple_table.col(0)

    def test_transpose_empty(self):
        assert Table([]).transpose().shape == (0, 0)

    def test_slice_rows(self, simple_table):
        body = simple_table.slice_rows(1)
        assert body.n_rows == 3
        assert body.row(0) == simple_table.row(1)

    def test_with_name(self, simple_table):
        renamed = simple_table.with_name("other")
        assert renamed.name == "other"
        assert renamed.rows == simple_table.rows

    def test_to_text_renders_all_rows(self, simple_table):
        text = simple_table.to_text()
        assert text.count("\n") == simple_table.n_rows - 1
        assert "State" in text

    def test_to_text_empty(self):
        assert Table([]).to_text() == "(empty table)"


class TestAnnotatedTable:
    def test_shape_mismatch_rows(self, simple_table):
        annotation = TableAnnotation.from_depths(3, 4, hmd_depth=1)
        with pytest.raises(ValueError):
            AnnotatedTable(table=simple_table, annotation=annotation)

    def test_shape_mismatch_cols(self, simple_table):
        annotation = TableAnnotation.from_depths(4, 2, hmd_depth=1)
        with pytest.raises(ValueError):
            AnnotatedTable(table=simple_table, annotation=annotation)

    def test_accessors(self, simple_table):
        annotation = TableAnnotation.from_depths(4, 4, hmd_depth=1, vmd_depth=1)
        item = AnnotatedTable(table=simple_table, annotation=annotation)
        assert item.hmd_depth == 1
        assert item.vmd_depth == 1
        assert item.metadata_rows() == [simple_table.row(0)]
        assert len(item.data_rows()) == 3
        assert item.metadata_cols() == [simple_table.col(0)]
        assert len(item.data_cols()) == 3

    def test_tables_of(self, simple_table):
        annotation = TableAnnotation.from_depths(4, 4, hmd_depth=1)
        items = [AnnotatedTable(table=simple_table, annotation=annotation)]
        assert tables_of(items) == [simple_table]


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

grids = st.lists(
    st.lists(st.text(max_size=6), min_size=1, max_size=5),
    min_size=1,
    max_size=6,
)


class TestProperties:
    @given(grids)
    def test_always_rectangular(self, raw):
        table = Table(raw)
        widths = {len(row) for row in table.rows}
        assert len(widths) == 1

    @given(grids)
    def test_double_transpose_identity(self, raw):
        table = Table(raw)
        assert table.transpose().transpose().rows == table.rows

    @given(grids)
    def test_transpose_swaps_access(self, raw):
        table = Table(raw)
        flipped = table.transpose()
        for j in range(table.n_cols):
            assert flipped.row(j) == table.col(j)


class TestContentHash:
    def test_deterministic(self):
        a = Table([["a", "b"], ["1", "2"]])
        b = Table([["a", "b"], ["1", "2"]])
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 64

    def test_name_and_source_excluded(self):
        a = Table([["a", "b"]], name="x", source="s1")
        b = Table([["a", "b"]], name="y", source="s2")
        assert a.content_hash() == b.content_hash()

    def test_cell_change_changes_hash(self):
        a = Table([["a", "b"], ["1", "2"]])
        b = Table([["a", "b"], ["1", "3"]])
        assert a.content_hash() != b.content_hash()

    def test_shape_disambiguates(self):
        # The same cells in a different grid must not collide.
        a = Table([["a", "b", "c", "d"]])
        b = Table([["a", "b"], ["c", "d"]])
        assert a.content_hash() != b.content_hash()

    def test_cell_boundaries_disambiguate(self):
        a = Table([["ab", "c"]])
        b = Table([["a", "bc"]])
        assert a.content_hash() != b.content_hash()

    def test_empty_table(self):
        assert Table([]).content_hash() == Table([]).content_hash()
