"""Tests for colspan/rowspan support in the HTML layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.markup import MarkupNoise, render_noisy_html
from repro.tables.html import parse_html_table, render_html_table
from repro.tables.labels import TableAnnotation
from repro.tables.model import Table


@pytest.fixture
def spanning_table():
    table = Table(
        [
            ["Group A", "", "Group B", ""],
            ["a", "b", "c", "d"],
            ["1", "2", "3", "4"],
        ]
    )
    return table, TableAnnotation.from_depths(3, 4, hmd_depth=2)


class TestRenderColspan:
    def test_colspan_emitted(self, spanning_table):
        table, ann = spanning_table
        html = render_html_table(table, ann, use_colspan=True)
        assert 'colspan="2"' in html
        # the level-2 row has no spans
        assert html.count("colspan") == 2

    def test_round_trip_exact(self, spanning_table):
        table, ann = spanning_table
        html = render_html_table(table, ann, use_colspan=True)
        assert parse_html_table(html).to_table().rows == table.rows

    def test_off_by_default(self, spanning_table):
        table, ann = spanning_table
        assert "colspan" not in render_html_table(table, ann)


class TestParseSpans:
    def test_colspan_expands(self):
        parsed = parse_html_table(
            '<table><tr><th colspan="3">x</th><th>y</th></tr></table>'
        )
        assert [c.text for c in parsed.cells[0]] == ["x", "", "", "y"]

    def test_continuation_inherits_th(self):
        parsed = parse_html_table(
            '<table><tr><th colspan="2">x</th></tr></table>'
        )
        assert parsed.th_fraction(0) == 1.0
        assert parsed.cells[0][1].is_continuation

    def test_rowspan_expands_down(self):
        parsed = parse_html_table(
            '<table><tr><td rowspan="2">x</td><td>1</td></tr>'
            "<tr><td>2</td></tr></table>"
        )
        assert [c.text for c in parsed.cells[0]] == ["x", "1"]
        assert [c.text for c in parsed.cells[1]] == ["", "2"]
        assert parsed.cells[1][0].is_continuation

    def test_combined_spans(self):
        parsed = parse_html_table(
            '<table><tr><td rowspan="2" colspan="2">x</td><td>a</td></tr>'
            "<tr><td>b</td></tr></table>"
        )
        assert [c.text for c in parsed.cells[0]] == ["x", "", "a"]
        assert [c.text for c in parsed.cells[1]] == ["", "", "b"]

    def test_garbage_span_attr_tolerated(self):
        parsed = parse_html_table(
            '<table><tr><td colspan="banana">x</td><td>y</td></tr></table>'
        )
        assert [c.text for c in parsed.cells[0]] == ["x", "y"]

    def test_zero_span_clamped(self):
        parsed = parse_html_table(
            '<table><tr><td colspan="0">x</td></tr></table>'
        )
        assert [c.text for c in parsed.cells[0]] == ["x"]


class TestNoisyColspanMarkup:
    def test_grid_preserved_under_colspan_markup(self, spanning_table):
        table, ann = spanning_table
        noise = MarkupNoise(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, colspan_prob=1.0)
        html = render_noisy_html(table, ann, np.random.default_rng(0), noise)
        assert "colspan" in html
        assert parse_html_table(html).to_table().rows == table.rows

    def test_bootstrap_sees_header_rows(self, spanning_table):
        from repro.core.bootstrap import bootstrap_from_html

        table, ann = spanning_table
        noise = MarkupNoise(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, colspan_prob=1.0)
        html = render_noisy_html(table, ann, np.random.default_rng(1), noise)
        labels = bootstrap_from_html(html)
        assert labels.metadata_row_indices == (0, 1)
