"""Tests for structural queries over classified tables."""

from __future__ import annotations

import pytest

from repro.tables.labels import TableAnnotation
from repro.tables.model import Table
from repro.tables.query import StructuredTable


@pytest.fixture
def fig1a_like() -> StructuredTable:
    """A miniature of the paper's Fig. 1(a): 1 HMD row, 3 VMD levels."""
    table = Table(
        [
            ["State", "System", "Campus", "Enrollment", "Officers"],
            ["New York", "SUNY", "Albany", "17,434", "37"],
            ["", "", "Binghamton", "14,373", "30"],
            ["", "Cornell", "Ithaca", "19,639", "47"],
            ["Indiana", "Ball State", "Muncie", "20,030", "25"],
        ]
    )
    annotation = TableAnnotation.from_depths(5, 5, hmd_depth=1, vmd_depth=3)
    return StructuredTable(table, annotation)


@pytest.fixture
def spanning_headers() -> StructuredTable:
    """Fig. 5 style: level-1 group headers spanning two columns each."""
    table = Table(
        [
            ["", "Men", "", "Women", ""],
            ["Age", "Harm", "Treat", "Harm", "Treat"],
            ["12 to 15", "21,557", "17,800", "21,148", "22,000"],
            ["16 to 19", "34,095", "13,069", "122,747", "10,317"],
        ]
    )
    annotation = TableAnnotation.from_depths(4, 5, hmd_depth=2, vmd_depth=1)
    return StructuredTable(table, annotation)


class TestConstruction:
    def test_shape_mismatch(self):
        table = Table([["a", "b"], ["1", "2"]])
        with pytest.raises(ValueError):
            StructuredTable(table, TableAnnotation.from_depths(3, 2, hmd_depth=1))

    def test_n_data_cells(self, fig1a_like):
        assert fig1a_like.n_data_cells == 4 * 2


class TestIntroExample:
    def test_binghamton_resolves_fully(self, fig1a_like):
        """The paper's headline example: '14,373' means Student
        enrollment at Binghamton in SUNY in New York."""
        records = fig1a_like.lookup(where=lambda r: r.value == "14,373")
        assert len(records) == 1
        record = records[0]
        assert record.vmd_path == ("New York", "SUNY", "Binghamton")
        assert record.attribute == "Enrollment"

    def test_blank_continuation_filled(self, fig1a_like):
        assert fig1a_like.row_context(3) == ("New York", "Cornell", "Ithaca")

    def test_attribute_path(self, fig1a_like):
        assert fig1a_like.attribute_path(3) == ("Enrollment",)

    def test_non_data_column_rejected(self, fig1a_like):
        with pytest.raises(KeyError):
            fig1a_like.attribute_path(0)  # a VMD column

    def test_non_data_row_rejected(self, fig1a_like):
        with pytest.raises(KeyError):
            fig1a_like.row_context(0)  # the header row


class TestSpanningHeaders:
    def test_fill_left_semantics(self, spanning_headers):
        assert spanning_headers.attribute_path(2) == ("Men", "Treat")
        assert spanning_headers.attribute_path(3) == ("Women", "Harm")

    def test_lookup_by_group(self, spanning_headers):
        women = spanning_headers.lookup(attribute="women")
        assert len(women) == 4  # 2 columns x 2 data rows
        assert all("Women" in r.hmd_path for r in women)

    def test_lookup_conjunction(self, spanning_headers):
        records = spanning_headers.lookup(
            attribute="women", context="16 to 19"
        )
        assert {r.value for r in records} == {"122,747", "10,317"}

    def test_attribute_leaf(self, spanning_headers):
        record = spanning_headers.lookup(where=lambda r: r.value == "21,557")[0]
        assert record.attribute == "Harm"
        assert record.hmd_path == ("Men", "Harm")


class TestRecords:
    def test_cells_cover_data_region(self, fig1a_like):
        cells = list(fig1a_like.cells())
        assert len(cells) == fig1a_like.n_data_cells
        assert all(record.value is not None for record in cells)

    def test_to_records_shape(self, fig1a_like):
        records = fig1a_like.to_records()
        assert len(records) == fig1a_like.n_data_cells
        first = records[0]
        assert set(first) == {
            "row", "col", "value", "attribute", "hmd_path", "vmd_path",
        }

    def test_case_insensitive_lookup(self, fig1a_like):
        assert fig1a_like.lookup(context="new york")
        assert fig1a_like.lookup(context="NEW YORK")

    def test_lookup_no_match(self, fig1a_like):
        assert fig1a_like.lookup(attribute="nonexistent") == []


class TestNoVmd:
    def test_relational_table(self):
        table = Table([["a", "b"], ["1", "2"], ["3", "4"]])
        structured = StructuredTable(
            table, TableAnnotation.from_depths(3, 2, hmd_depth=1)
        )
        records = list(structured.cells())
        assert len(records) == 4
        assert all(record.vmd_path == () for record in records)
