"""Tests for structural table validation."""

from __future__ import annotations

import pytest

from repro.tables.model import Table
from repro.tables.validate import (
    TableValidationError,
    ValidationPolicy,
    blank_fraction,
    is_valid_table,
    validate_table,
)


class TestPolicy:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ValidationPolicy(min_rows=0)
        with pytest.raises(ValueError):
            ValidationPolicy(max_blank_fraction=1.5)


class TestValidate:
    def test_valid_table_returned(self, simple_table):
        assert validate_table(simple_table) is simple_table

    def test_too_few_rows(self):
        with pytest.raises(TableValidationError, match="rows"):
            validate_table(Table([["a", "b"]]))

    def test_too_few_cols(self):
        with pytest.raises(TableValidationError, match="columns"):
            validate_table(Table([["a"], ["b"]]))

    def test_too_blank(self):
        rows = [["a", ""]] + [["", ""]] * 5  # 11/12 blank > 0.9
        with pytest.raises(TableValidationError, match="blank"):
            validate_table(Table(rows))

    def test_cell_budget(self):
        policy = ValidationPolicy(max_cells=4)
        with pytest.raises(TableValidationError, match="cells"):
            validate_table(Table([["a"] * 3] * 3), policy)

    def test_custom_policy_relaxes(self):
        policy = ValidationPolicy(min_rows=1, min_cols=1)
        table = Table([["only"]])
        assert validate_table(table, policy) is table


class TestHelpers:
    def test_blank_fraction(self):
        assert blank_fraction(Table([["a", ""], ["", ""]])) == pytest.approx(0.75)
        assert blank_fraction(Table([])) == 1.0

    def test_is_valid_table(self, simple_table):
        assert is_valid_table(simple_table)
        assert not is_valid_table(Table([["a"]]))
