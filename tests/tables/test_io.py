"""Tests for CSV and JSON serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.tables.csvio import table_from_csv, table_to_csv
from repro.tables.jsonio import (
    annotated_table_from_json,
    annotated_table_to_json,
    table_from_json,
    table_to_json,
)
from repro.tables.labels import LevelKind, TableAnnotation
from repro.tables.model import AnnotatedTable, Table


class TestCsv:
    def test_round_trip(self, simple_table):
        text = table_to_csv(simple_table)
        back = table_from_csv(text)
        assert back.rows == simple_table.rows

    def test_quoting(self):
        table = Table([['a,b', 'he said "hi"'], ["1", "2"]])
        back = table_from_csv(table_to_csv(table))
        assert back.rows == table.rows

    def test_no_trailing_newline(self, simple_table):
        assert not table_to_csv(simple_table).endswith("\n")

    def test_ragged_csv_pads(self):
        back = table_from_csv("a,b,c\nd")
        assert back.row(1) == ("d", "", "")

    def test_name_source_passthrough(self):
        table = table_from_csv("a,b", name="t", source="s")
        assert table.name == "t"
        assert table.source == "s"


class TestJsonTable:
    def test_round_trip(self, simple_table):
        back = table_from_json(table_to_json(simple_table))
        assert back.rows == simple_table.rows
        assert back.name == simple_table.name

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            table_from_json(json.dumps({"not_rows": []}))
        with pytest.raises(ValueError):
            table_from_json(json.dumps([1, 2, 3]))

    def test_bare_array_grid(self):
        # A single-line JSON array document (stdin exports) is a grid.
        back = table_from_json('[["a","b"],["1","2"]]')
        assert back.rows == (("a", "b"), ("1", "2"))


class TestJsonAnnotated:
    def test_round_trip(self, hierarchical_table, hierarchical_annotation):
        item = AnnotatedTable(
            table=hierarchical_table,
            annotation=hierarchical_annotation,
            html="<table></table>",
            meta={"profile": "ckg", "hmd_depth": 2},
        )
        back = annotated_table_from_json(annotated_table_to_json(item))
        assert back.table.rows == item.table.rows
        assert back.annotation.hmd_depth == 2
        assert back.annotation.vmd_depth == 1
        assert back.html == "<table></table>"
        assert back.meta["profile"] == "ckg"

    def test_cmd_labels_survive(self):
        table = Table([["h", "x"], ["a", "1"], ["sub", ""], ["b", "2"]])
        ann = TableAnnotation.from_depths(4, 2, hmd_depth=1, cmd_rows=[2])
        item = AnnotatedTable(table=table, annotation=ann)
        back = annotated_table_from_json(annotated_table_to_json(item))
        assert back.annotation.row_labels[2].kind is LevelKind.CMD

    def test_no_html_is_none(self, simple_table):
        ann = TableAnnotation.from_depths(4, 4, hmd_depth=1)
        item = AnnotatedTable(table=simple_table, annotation=ann)
        back = annotated_table_from_json(annotated_table_to_json(item))
        assert back.html is None


csv_cell = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=10,
).map(lambda s: " ".join(s.split()))


@given(st.lists(st.lists(csv_cell, min_size=1, max_size=4), min_size=1, max_size=5))
def test_csv_round_trip_property(raw):
    table = Table(raw)
    assert table_from_csv(table_to_csv(table)).rows == table.rows


@given(st.lists(st.lists(csv_cell, min_size=1, max_size=4), min_size=1, max_size=5))
def test_json_round_trip_property(raw):
    table = Table(raw, name="t")
    assert table_from_json(table_to_json(table)).rows == table.rows
