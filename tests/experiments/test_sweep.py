"""Tests for the sensitivity sweep harness."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SMOKE
from repro.experiments.sweep import SweepPoint, corpus_size_sweep, run_sweep


class TestSweep:
    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([], dataset="ckg")

    def test_single_point(self):
        result = run_sweep(
            [SweepPoint(n_train=80, dim=24)], dataset="ckg", scale=SMOKE
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row[0] == "n=80 d=24 e=2"
        assert row[1] is not None  # HMD1 scored
        assert row[5] > 0  # fit took time

    def test_corpus_size_sweep_improves(self):
        """The EXPERIMENTS.md finding: more tables -> better geometry.
        Tested loosely (tiny corpora are noisy): the largest corpus must
        beat the smallest at level 1."""
        result = corpus_size_sweep(
            dataset="ckg", sizes=(20, 80), dim=24, scale=SMOKE
        )
        smallest, largest = result.rows[0], result.rows[-1]
        assert largest[1] >= smallest[1]

    def test_render(self):
        result = run_sweep(
            [SweepPoint(n_train=40, dim=16, epochs=1)], dataset="wdc", scale=SMOKE
        )
        text = result.render()
        assert "Sensitivity sweep" in text
        assert "n=40 d=16 e=1" in text
