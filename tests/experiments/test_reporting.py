"""Tests for ASCII rendering helpers."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ascii_bar_chart, ascii_table, percent


class TestAsciiTable:
    def test_basic_render(self):
        text = ascii_table(
            ["Name", "Value"], [["alpha", 1.5], ["beta", None]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| alpha" in text
        assert "1.5" in text
        assert "-" in text  # None renders as dash

    def test_column_width_adapts(self):
        text = ascii_table(["H"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["A", "B"], [["only-one"]])

    def test_empty_rows(self):
        text = ascii_table(["A"], [])
        assert "A" in text


class TestBarChart:
    def test_values_scaled(self):
        text = ascii_bar_chart(
            {"ds": {"level 1": 100.0, "level 2": 50.0}}, width=10
        )
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_none_renders_na(self):
        text = ascii_bar_chart({"ds": {"level 1": None}})
        assert "n/a" in text

    def test_title(self):
        text = ascii_bar_chart({}, title="Fig")
        assert text.startswith("Fig")

    def test_clamping(self):
        text = ascii_bar_chart({"d": {"x": 500.0}}, width=10)
        assert text.count("#") == 10


class TestPercent:
    def test_rounding(self):
        assert percent(0.8571) == 85.7
        assert percent(None) is None
        assert percent(1.0) == 100.0
