"""Smoke tests for the ablation and significance experiments.

The full ablation studies are exercised (with shape assertions) by the
benchmark suite; here we cover the cheap ones — those reusing the cached
fitted pipeline — plus structural checks on the result schema.
"""

from __future__ import annotations

import pytest

from repro.experiments import SMOKE, run_significance
from repro.experiments.ablations import (
    run_ablation_hybrid,
    run_ablation_self_training,
    run_ablation_similarity,
)


class TestSimilarityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_similarity(SMOKE)

    def test_three_measures(self, result):
        assert [row[0] for row in result.rows] == ["angle", "euclidean", "jaccard"]

    def test_aucs_are_probabilities(self, result):
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0

    def test_angle_width_robust(self, result):
        aucs = {row[0]: row for row in result.rows}
        assert aucs["angle"][2] >= 0.9
        assert aucs["euclidean"][2] < aucs["angle"][2]


class TestHybridAblation:
    def test_rows_and_routing(self):
        result = run_ablation_hybrid(SMOKE)
        rows = {row[0]: row for row in result.rows}
        assert set(rows) == {"full pipeline", "hybrid"}
        assert rows["full pipeline"][4] == 0
        assert rows["hybrid"][4] >= 0


class TestSelfTrainingAblation:
    def test_rows(self):
        result = run_ablation_self_training(SMOKE)
        labels = [row[0] for row in result.rows]
        assert labels == ["base fit", "after self-training"]
        assert all(row[1] is not None for row in result.rows)


class TestSignificance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_significance(SMOKE)

    def test_schema(self, result):
        assert result.headers[0] == "Comparison"
        assert len(result.rows) >= 5
        for row in result.rows:
            assert row[4] in ("yes", "no")
            assert 0.0 < row[3] <= 1.0  # p-value

    def test_vmd_wins_significant(self, result):
        vmd_rows = [r for r in result.rows if r[1].startswith("VMD")]
        assert vmd_rows
        assert all(r[4] == "yes" for r in vmd_rows)

    def test_render(self, result):
        assert "Paired significance" in result.render()
