"""Integration tests for the experiment harness.

These exercise the artifact-regeneration paths end to end on CKG (the
dataset every experiment includes) at the SMOKE scale.  Fits are cached
by the runner, so the whole module costs one CKG fit.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    SMOKE,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.experiments.runner import (
    ExperimentScale,
    eval_corpus_for,
    fitted_pipeline,
    pipeline_config_for,
    train_corpus_for,
)


class TestRunner:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", n_train=0, n_eval=1, n_stratified=1)

    def test_pipeline_cached(self):
        a = fitted_pipeline("ckg", SMOKE)
        b = fitted_pipeline("ckg", SMOKE)
        assert a is b

    def test_bootstrap_mode_per_dataset(self):
        assert pipeline_config_for("saus", SMOKE).bootstrap == "first_level"
        assert pipeline_config_for("ckg", SMOKE).bootstrap == "html"

    def test_train_eval_disjoint(self):
        train = train_corpus_for("ckg", SMOKE)
        evaluation = eval_corpus_for("ckg", SMOKE)
        train_names = {item.table.name for item in train}
        assert all(item.table.name not in train_names for item in evaluation)

    def test_eval_has_deep_strata(self):
        evaluation = eval_corpus_for("ckg", SMOKE)
        depths = {item.hmd_depth for item in evaluation}
        assert {1, 2, 3, 4, 5} <= depths


class TestCentroidTables:
    def test_table2_rows(self):
        result = run_table2(SMOKE)
        assert len(result.rows) == 6  # six datasets
        datasets = [row[0] for row in result.rows]
        assert "pubtables" in datasets
        text = result.render()
        assert "Table II" in text

    def test_table3_excludes_pubtables(self):
        result = run_table3(SMOKE)
        assert len(result.rows) == 5
        assert all(row[0] != "pubtables" for row in result.rows)

    def test_table1_levels(self):
        result = run_table1(SMOKE)
        levels = {row[1] for row in result.rows}
        assert levels == {"Lev. 2", "Lev. 3", "Lev. 4", "Lev. 5"}
        ckg_rows = [row for row in result.rows if row[0] == "ckg"]
        assert len(ckg_rows) == 4  # CKG appears at levels 2-5

    def test_table4_levels(self):
        result = run_table4(SMOKE)
        levels = {row[1] for row in result.rows}
        assert levels == {"Lev. 2", "Lev. 3"}


class TestAccuracyTable:
    @pytest.fixture(scope="class")
    def table5(self):
        return run_table5(SMOKE, datasets=("ckg",))

    def test_structure(self, table5):
        rows = table5.result.rows
        assert len(rows) == 5  # CKG: levels 1-5
        assert rows[0][1] == "HMD1/VMD1"
        assert rows[4][1] == "HMD5"

    def test_baseline_dashes_beyond_level1(self, table5):
        for row in table5.result.rows[1:]:
            assert row[2] is None  # pytheas
            assert row[3] is None  # tt

    def test_paper_shape_ours_beats_llm_free_baselines_deep(self, table5):
        scores = table5.per_dataset["ckg"]
        ours = scores["ours"]
        assert all(v is not None for v in ours.hmd.values())
        # deep levels stay strong (the paper's headline claim)
        assert ours.hmd[5] >= 60.0
        assert ours.vmd[3] >= 60.0

    def test_pytheas_strong_at_level1(self, table5):
        scores = table5.per_dataset["ckg"]
        assert scores["pytheas"].hmd[1] >= 90.0

    def test_tt_below_pytheas(self, table5):
        scores = table5.per_dataset["ckg"]
        assert scores["tt"].hmd[1] <= scores["pytheas"].hmd[1]

    def test_rf_extension(self):
        result = run_table5(SMOKE, datasets=("ckg",), include_rf=True)
        assert "RF (ext.)" in result.result.headers


class TestLLMTable:
    @pytest.fixture(scope="class")
    def table6(self):
        return run_table6(SMOKE)

    def test_structure(self, table6):
        assert len(table6.rows) == 5
        assert table6.headers == ("Metadata Level", "GPT3.5", "GPT4", "RAG+GPT4")

    def test_vmd3_zero_without_rag(self, table6):
        level3 = table6.rows[2]
        assert level3[1].endswith("/0.0")  # gpt-3.5
        assert level3[2].endswith("/0.0")  # gpt-4

    def test_render(self, table6):
        assert "Table VI" in table6.render()


class TestFigures:
    def test_figure5_annotates(self):
        figure = run_figure5(SMOKE)
        text = figure.render()
        assert "Fig. 5" in text
        assert "Δ" in text
        assert "C_MDE" in text
        assert figure.result.row_evidence

    def test_figure6_series(self):
        figure = run_figure6(SMOKE)
        assert set(figure.series) == {
            "cord19", "ckg", "wdc", "cius", "saus", "pubtables",
        }
        assert len(figure.series["ckg"]) == 5
        assert "Fig. 6" in figure.render()

    def test_figure7_series(self):
        figure = run_figure7(SMOKE)
        assert "pubtables" not in figure.series
        assert len(figure.series["ckg"]) == 3


class TestRuntime:
    def test_rows_and_positivity(self):
        result = run_runtime(SMOKE)
        methods = [row[0] for row in result.rows]
        assert methods == ["ours", "pytheas", "table-transformer"]
        ours = result.rows[0]
        assert ours[1] > 0  # training took time
        assert ours[2] > 0  # inference took time
        # TT needs no corpus fit
        assert result.rows[2][1] == 0.0
