"""Fixture tests for the determinism rule family."""

from __future__ import annotations

import textwrap

from repro.analysis import Baseline, lint_source


def _lint(source: str, rule: str, module: str | None = "repro.core.fixture"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), module=module)
        if f.rule == rule
    ]


UNSEEDED = """
    import numpy as np

    def sample(pool):
        rng = np.random.default_rng()
        return rng.choice(pool)
"""


class TestUnseededRng:
    def test_positive_default_rng_no_args(self):
        findings = _lint(UNSEEDED, "unseeded-rng")
        assert len(findings) == 1
        assert "OS entropy" in findings[0].message

    def test_positive_legacy_np_globals(self):
        findings = _lint(
            """
            import numpy as np

            def jitter(n):
                np.random.seed(0)
                return np.random.randn(n) + np.random.uniform()
            """,
            "unseeded-rng",
        )
        assert len(findings) == 3
        assert all("process-global" in f.message for f in findings)

    def test_positive_stdlib_random(self):
        findings = _lint(
            """
            import random

            def pick(pool):
                random.shuffle(pool)
                return random.choice(pool)
            """,
            "unseeded-rng",
        )
        assert len(findings) == 2
        assert all("hidden global" in f.message for f in findings)

    def test_negative_seeded_generator(self):
        findings = _lint(
            """
            import numpy as np

            def sample(pool, seed):
                rng = np.random.default_rng(seed)
                local = np.random.default_rng((seed, 7))
                return rng.choice(pool), local.choice(pool)
            """,
            "unseeded-rng",
        )
        assert findings == []

    def test_negative_instance_methods_not_flagged(self):
        # rng.choice / my_random.shuffle are generator methods, not the
        # global-state module functions.
        findings = _lint(
            """
            def sample(rng, pool):
                rng.shuffle(pool)
                return rng.choice(pool)
            """,
            "unseeded-rng",
        )
        assert findings == []

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(UNSEEDED, "unseeded-rng", module="repro.serve.service")
        assert findings == []

    def test_corpus_and_experiments_in_scope(self):
        for module in ("repro.corpus.synthetic", "repro.experiments.ablations"):
            assert len(_lint(UNSEEDED, "unseeded-rng", module=module)) == 1

    def test_suppressed(self):
        findings = _lint(
            """
            import numpy as np

            def sample(pool):
                # repro-lint: disable=unseeded-rng - smoke-test helper only
                rng = np.random.default_rng()
                return rng.choice(pool)
            """,
            "unseeded-rng",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(
                textwrap.dedent(UNSEEDED),
                path="rng.py",
                module="repro.core.fixture",
            )
            if f.rule == "unseeded-rng"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1


DATA_SEED = """
    import numpy as np

    def sample(pool):
        rng = np.random.default_rng(len(pool))
        return rng.choice(pool)
"""


class TestDataDependentSeed:
    def test_positive_len(self):
        findings = _lint(DATA_SEED, "data-dependent-seed")
        assert len(findings) == 1
        assert "len()" in findings[0].message

    def test_positive_len_in_expression(self):
        # The regression pattern from core/centroids.py: the seed was an
        # arithmetic expression over len() of data-derived pools.
        findings = _lint(
            """
            import numpy as np

            def sample(pool, names):
                rng = np.random.default_rng(len(pool) + 31 * len(names))
                return rng.choice(pool)
            """,
            "data-dependent-seed",
        )
        assert len(findings) == 1

    def test_positive_time_and_hash(self):
        findings = _lint(
            """
            import time
            import numpy as np

            def sample(pool, key):
                a = np.random.default_rng(int(time.time()))
                b = np.random.default_rng(hash(key))
                return a, b
            """,
            "data-dependent-seed",
        )
        assert len(findings) == 2

    def test_negative_configured_seed(self):
        findings = _lint(
            """
            import numpy as np

            def sample(pool, seed):
                rng = np.random.default_rng((seed, 2))
                return rng.choice(pool)
            """,
            "data-dependent-seed",
        )
        assert findings == []

    def test_negative_len_outside_seed(self):
        findings = _lint(
            """
            import numpy as np

            def sample(pool, seed):
                rng = np.random.default_rng(seed)
                return rng.integers(len(pool))
            """,
            "data-dependent-seed",
        )
        assert findings == []

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(
            DATA_SEED, "data-dependent-seed", module="repro.serve.service"
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            import numpy as np

            def sample(pool):
                # repro-lint: disable=data-dependent-seed - legacy repro of
                # the paper's original (buggy) sampler, kept for comparison.
                rng = np.random.default_rng(len(pool))
                return rng.choice(pool)
            """,
            "data-dependent-seed",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(
                textwrap.dedent(DATA_SEED),
                path="seed.py",
                module="repro.core.fixture",
            )
            if f.rule == "data-dependent-seed"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1
