"""Mmap write-safety pass (``mmap-write``).

Taint flows from ``np.load(..., mmap_mode=...)`` calls and
``# mmap-backed`` annotations to in-place mutation sinks; a mutation of
a page-cache-shared array crashes on ``"r"`` maps and silently edits
the model file on disk under every other worker on ``"r+"`` maps.
"""

from __future__ import annotations

from repro.analysis import analyze_sources
from repro.analysis.passes import get_pass


def _run(sources: dict[str, str], *pass_ids: str):
    passes = [get_pass(p) for p in pass_ids]
    return analyze_sources(sources, passes=passes)


def test_augmented_assignment_on_mmap_load_is_flagged():
    source = '''
import numpy as np

def scale(path):
    weights = np.load(path, mmap_mode="r")
    weights += 1.0
    return weights
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "mmap-write"
    assert "augmented assignment" in finding.message
    assert "weights" in finding.message


def test_slice_assignment_on_mmap_load_is_flagged():
    source = '''
import numpy as np

def zero_row(path, idx):
    weights = np.load(path, mmap_mode="r+")
    weights[idx] = 0.0
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "slice assignment" in findings[0].message


def test_out_argument_on_mmap_load_is_flagged():
    source = '''
import numpy as np

def accumulate(path, delta):
    weights = np.load(path, mmap_mode="r")
    np.add(weights, delta, out=weights)
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "out= argument" in findings[0].message


def test_mutating_method_on_mmap_load_is_flagged():
    source = '''
import numpy as np

def reorder(path):
    weights = np.load(path, mmap_mode="r")
    weights.sort()
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "in-place sort" in findings[0].message


def test_non_mmap_load_is_clean():
    # No mmap_mode (or an explicit None) loads a private in-memory
    # copy; mutating it is fine.
    source = '''
import numpy as np

def scale(path):
    a = np.load(path)
    b = np.load(path, mmap_mode=None)
    a += 1.0
    b[0] = 2.0
    return a, b
'''
    assert _run({"src/app/store.py": source}, "mmap-write") == []


def test_mmap_backed_comment_taints_local():
    # The human annotation covers indirections the dataflow cannot see
    # (directory-store lookups); same line or the line above counts.
    source = '''
def scale(store):
    weights = store.lookup("w")  # mmap-backed
    weights += 1.0
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "augmented assignment" in findings[0].message


def test_mmap_backed_attribute_taints_whole_class():
    # Annotating the assignment in __init__ taints self._matrix in
    # every method of the class.
    source = '''
class Plane:
    def __init__(self, store):
        # mmap-backed
        self._matrix = store.get("matrix")

    def poke(self, idx, value):
        self._matrix[idx] = value
'''
    findings = _run({"src/app/plane.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "slice assignment" in findings[0].message


def test_return_taint_crosses_one_call():
    source = '''
import numpy as np

def open_weights(path):
    return np.load(path, mmap_mode="r")

def clobber(path):
    weights = open_weights(path)
    weights.fill(0.0)
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "in-place fill" in findings[0].message


def test_setflags_write_true_is_flagged():
    source = '''
import numpy as np

def unprotect(path):
    weights = np.load(path, mmap_mode="r")
    weights.setflags(write=True)
    return weights
'''
    findings = _run({"src/app/store.py": source}, "mmap-write")
    assert len(findings) == 1
    assert "setflags(write=True)" in findings[0].message


def test_suppression_with_rationale_dismisses():
    source = '''
import numpy as np

def scale(path):
    weights = np.load(path, mmap_mode="r")
    # The store re-opens this copy-on-write before handing it out.
    # repro-lint: disable=mmap-write
    weights += 1.0
    return weights
'''
    assert _run({"src/app/store.py": source}, "mmap-write") == []
