"""Whole-program lock-order analysis (``repro analyze``).

The must-fail fixture in ``test_pr1_deadlock_shape_is_detected``
reproduces the PR 1 serve executor deadlock: the submit path held the
pool gate and blocked on the queue lock while the collector held the
queue lock and called back into code taking the gate.  Per-file rules
never saw it — the two acquisitions lived in different functions.
"""

from __future__ import annotations

from repro.analysis import analyze_sources
from repro.analysis.passes import get_pass


def _run(sources: dict[str, str], *pass_ids: str):
    passes = [get_pass(p) for p in pass_ids]
    return analyze_sources(sources, passes=passes)


# ---------------------------------------------------------------------------
# lock-order-cycle
# ---------------------------------------------------------------------------

PR1_DEADLOCK = '''
import threading

class Batcher:
    def __init__(self):
        self._gate = threading.Lock()
        self._queue_lock = threading.Lock()

    def submit(self, item):
        # Thread 1: gate -> queue_lock
        with self._gate:
            with self._queue_lock:
                return item

    def collect(self):
        # Thread 2: queue_lock -> gate (inverted order = deadlock)
        with self._queue_lock:
            self._reopen()

    def _reopen(self):
        with self._gate:
            return None
'''


def test_pr1_deadlock_shape_is_detected():
    findings = _run(
        {"src/app/batching.py": PR1_DEADLOCK}, "lock-order-cycle"
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "lock-order-cycle"
    assert "_gate" in finding.message and "_queue_lock" in finding.message
    assert "deadlock" in finding.message


def test_consistent_order_is_not_a_cycle():
    source = '''
import threading

class Store:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def read(self):
        with self._a_lock:
            with self._b_lock:
                return 1

    def write(self):
        with self._a_lock:
            with self._b_lock:
                return 2
'''
    assert _run({"src/app/store.py": source}, "lock-order-cycle") == []


def test_cycle_across_files_is_detected():
    left = '''
import threading
from app.right import flush

LEFT_LOCK = threading.Lock()

def push():
    with LEFT_LOCK:
        flush()
'''
    right = '''
import threading
from app.left import LEFT_LOCK

RIGHT_LOCK = threading.Lock()

def flush():
    with RIGHT_LOCK:
        return None

def drain():
    with RIGHT_LOCK:
        with LEFT_LOCK:
            return None
'''
    findings = _run(
        {"src/app/left.py": left, "src/app/right.py": right},
        "lock-order-cycle",
    )
    assert len(findings) == 1
    assert "LEFT_LOCK" in findings[0].message
    assert "RIGHT_LOCK" in findings[0].message


def test_suppression_on_with_statement_dismisses_cycle():
    # Satellite: a disable= on any edge's with line blesses the whole
    # cycle — suppressing one edge asserts the ordering was reviewed.
    source = PR1_DEADLOCK.replace(
        "        with self._queue_lock:\n            self._reopen()",
        "        # repro-lint: disable=lock-order-cycle - reviewed: the\n"
        "        # collector only runs after submit drains (PR 1 fix).\n"
        "        with self._queue_lock:\n            self._reopen()",
    )
    assert source != PR1_DEADLOCK
    assert _run({"src/app/batching.py": source}, "lock-order-cycle") == []


def test_file_level_disable_suppresses_cycle():
    # Satellite: generated fixtures carry a file-level disable.
    source = "# repro-lint: disable-file=lock-order-cycle\n" + PR1_DEADLOCK
    assert _run({"src/app/gen.py": source}, "lock-order-cycle") == []


# ---------------------------------------------------------------------------
# lock-reacquire-via-call
# ---------------------------------------------------------------------------

def test_reacquire_through_call_chain():
    source = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def bump(self):
        with self._lock:
            self._log()

    def _log(self):
        self._snapshot()

    def _snapshot(self):
        with self._lock:
            return self.n
'''
    findings = _run({"src/app/counter.py": source}, "lock-reacquire-via-call")
    assert len(findings) == 1
    finding = findings[0]
    assert "not reentrant" in finding.message
    assert "_log" in finding.message and "_snapshot" in finding.message


def test_direct_reacquire_same_with_is_not_reported_twice():
    # with self._lock: with self._lock: is the per-file rule's job
    # (nested-acquisition branch of lock-blocking-call), not this pass's.
    source = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()

    def f(self):
        with self._lock:
            return 1

    def g(self):
        with self._lock:
            return 2
'''
    assert _run({"src/app/c.py": source}, "lock-reacquire-via-call") == []


# ---------------------------------------------------------------------------
# lock-held-call-acquires (observe-only)
# ---------------------------------------------------------------------------

def test_held_call_edge_is_warning_not_gating():
    source = '''
import threading

class Router:
    def __init__(self):
        self._route_lock = threading.Lock()

    def route(self, handle):
        with self._route_lock:
            return handle.estimate()

class Handle:
    def __init__(self):
        self._stats_lock = threading.Lock()

    def estimate(self):
        with self._stats_lock:
            return 0.0
'''
    findings = _run({"src/app/router.py": source}, "lock-held-call-acquires")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity.value == "warning"
    assert "_route_lock" in finding.message
    assert "_stats_lock" in finding.message


def test_guarded_by_annotation_names_a_lock():
    # An attribute that does not match the lock regex still counts when
    # a guarded-by annotation declares it.
    source = '''
import threading

class Pool:
    def __init__(self):
        self.barrier = threading.Lock()
        self.jobs = []  # guarded-by: barrier
        self._lock = threading.Lock()

    def a(self):
        with self.barrier:
            with self._lock:
                return 1

    def b(self):
        with self._lock:
            with self.barrier:
                return 2
'''
    findings = _run({"src/app/pool.py": source}, "lock-order-cycle")
    assert len(findings) == 1
    assert "barrier" in findings[0].message
