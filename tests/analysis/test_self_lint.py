"""The tree must pass its own linter and analyzer, with no baseline.

This is the PR's acceptance gate in test form: ``repro lint src`` and
``repro analyze src`` exit 0 from a checkout, the committed baseline is
empty (the last grandfathered debt — library asserts — was converted to
typed :class:`repro.invariants.InvariantError` raises), and it stays
empty: new findings must be fixed or suppressed with a rationale, not
grandfathered.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths, lint_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


@pytest.fixture(autouse=True)
def _from_repo_root(monkeypatch):
    # Baseline fingerprints key on repo-relative paths ("src/repro/..."),
    # so the linter must run from the checkout root, as CI does.
    monkeypatch.chdir(REPO_ROOT)


def test_src_is_clean_modulo_baseline():
    baseline = Baseline.load(BASELINE)
    report = lint_paths(["src"], baseline=baseline)
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.n_files > 0


def test_baseline_has_no_stale_entries():
    baseline = Baseline.load(BASELINE)
    report = lint_paths(["src"], baseline=baseline)
    assert len(report.baselined) == len(baseline), (
        "baseline entries no longer match any finding; regenerate with "
        "'repro lint src --write-baseline' so the grandfathered count "
        "shrinks as sites are fixed"
    )
    assert baseline.stale_entries(report.findings + report.baselined) == []


def test_cli_exits_zero_from_checkout(capsys):
    assert main(["lint", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert out.rstrip().endswith("-- ok")


def test_analyze_cli_exits_zero_from_checkout(capsys):
    # The whole-program passes (lock order, spawn safety, mmap writes,
    # wire schema) must hold over the real tree with no baseline —
    # by-design findings carry inline suppressions with rationales.
    assert main(["analyze", "src", "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_deep_lint_is_clean_from_checkout():
    baseline = Baseline.load(BASELINE)
    report = analyze_paths(["src"], baseline=baseline, with_rules=True)
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )


def test_committed_baseline_is_empty():
    # PR 8 paid down the last grandfathered debt (library asserts →
    # repro.invariants.not_none).  The baseline stays empty: fix or
    # suppress-with-rationale, don't grandfather.
    baseline = Baseline.load(BASELINE)
    assert len(baseline) == 0
