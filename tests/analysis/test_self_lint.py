"""The tree must pass its own linter, modulo the committed baseline.

This is the PR's acceptance gate in test form: ``repro lint src`` exits
0 from a checkout, and the baseline holds no stale entries (fixing a
grandfathered site means regenerating the baseline so the debt count
shrinks).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, lint_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


@pytest.fixture(autouse=True)
def _from_repo_root(monkeypatch):
    # Baseline fingerprints key on repo-relative paths ("src/repro/..."),
    # so the linter must run from the checkout root, as CI does.
    monkeypatch.chdir(REPO_ROOT)


def test_src_is_clean_modulo_baseline():
    baseline = Baseline.load(BASELINE)
    report = lint_paths(["src"], baseline=baseline)
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.n_files > 0


def test_baseline_has_no_stale_entries():
    baseline = Baseline.load(BASELINE)
    report = lint_paths(["src"], baseline=baseline)
    assert len(report.baselined) == len(baseline), (
        "baseline entries no longer match any finding; regenerate with "
        "'repro lint src --write-baseline' so the grandfathered count "
        "shrinks as sites are fixed"
    )


def test_cli_exits_zero_from_checkout(capsys):
    assert main(["lint", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_committed_baseline_is_assert_debt_only():
    # The concurrency/numpy/determinism fixes landed with the linter;
    # only pre-existing library asserts were grandfathered.
    baseline = Baseline.load(BASELINE)
    assert len(baseline) > 0
    assert {entry["rule"] for entry in baseline.entries} == {
        "assert-in-library"
    }
