"""Shared fixtures for the analysis-suite tests."""

from __future__ import annotations

import pytest

from repro.analysis import all_rules, lint_source


@pytest.fixture
def findings_for():
    """Lint a snippet and return the finding list (all rules)."""

    def run(source: str, *, module: str | None = None, rule: str | None = None):
        found = lint_source(source, module=module)
        if rule is not None:
            found = [f for f in found if f.rule == rule]
        return found

    return run


@pytest.fixture
def rule_ids():
    return {rule.id for rule in all_rules()}
