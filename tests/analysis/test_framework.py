"""Framework-level tests: suppressions, baseline, registry, reporters,
and the ``repro lint`` CLI exit-code contract."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintReport,
    all_rules,
    get_rule,
    lint_paths,
)
from repro.analysis.context import module_name_for
from repro.analysis.registry import Rule
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import collect_files, select_rules
from repro.analysis.suppressions import parse_suppressions
from repro.cli import main

EXPECTED_RULES = {
    "lock-blocking-call",
    "guarded-attr",
    "np-array-dtype",
    "float-equality",
    "scalar-embed-loop",
    "unseeded-rng",
    "data-dependent-seed",
    "mutable-default-arg",
    "broad-except",
    "assert-in-library",
}


class TestRegistry:
    def test_catalogue_complete(self, rule_ids):
        assert rule_ids == EXPECTED_RULES

    def test_sorted_by_family_then_id(self):
        rules = all_rules()
        assert [(r.family, r.id) for r in rules] == sorted(
            (r.family, r.id) for r in rules
        )

    def test_get_rule_unknown_lists_known(self):
        with pytest.raises(KeyError, match="known rules"):
            get_rule("no-such-rule")

    def test_scope_matching(self):
        rule = Rule(
            id="x", family="f", description="", check=lambda ctx: [],
            scope=("repro.core",),
        )
        assert rule.applies_to("repro.core")
        assert rule.applies_to("repro.core.pipeline")
        assert rule.applies_to(None)  # fail-open when underivable
        assert not rule.applies_to("repro.corelib")  # prefix, not substring
        assert not rule.applies_to("repro.serve.service")

    def test_select_and_ignore(self):
        picked = select_rules(select=["broad-except", "guarded-attr"])
        assert {r.id for r in picked} == {"broad-except", "guarded-attr"}
        remaining = select_rules(ignore=["assert-in-library"])
        assert "assert-in-library" not in {r.id for r in remaining}
        assert len(remaining) == len(all_rules()) - 1


class TestModuleNameFor:
    def test_src_anchor(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "pipeline.py"
        assert module_name_for(path) == "repro.core.pipeline"

    def test_init_maps_to_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "__init__.py"
        assert module_name_for(path) == "repro.core"

    def test_repro_anchor_without_src(self, tmp_path):
        path = tmp_path / "repro" / "serve" / "cache.py"
        assert module_name_for(path) == "repro.serve.cache"

    def test_unanchored_is_none(self, tmp_path):
        assert module_name_for(tmp_path / "scratch" / "snippet.py") is None


class TestSuppressions:
    def _index(self, source: str):
        from repro.analysis.context import _extract_comments

        source = textwrap.dedent(source)
        return parse_suppressions(
            _extract_comments(source), source.splitlines()
        )

    def test_trailing_comment_covers_its_line(self):
        index = self._index("x = compute()  # repro-lint: disable=rule-a\n")
        assert index.is_suppressed("rule-a", 1)
        assert not index.is_suppressed("rule-b", 1)
        assert not index.is_suppressed("rule-a", 2)

    def test_standalone_block_covers_next_code_line(self):
        index = self._index(
            """
            # repro-lint: disable=rule-a - the rationale continues on
            # the following comment line before the code starts.
            x = compute()
            y = other()
            """
        )
        assert index.is_suppressed("rule-a", 4)  # first code line
        assert not index.is_suppressed("rule-a", 5)

    def test_rationale_text_does_not_leak_into_rule_names(self):
        index = self._index(
            "x = f()  # repro-lint: disable=rule-a - load-bearing order\n"
        )
        assert index.is_suppressed("rule-a", 1)
        assert index.by_line[1] == frozenset({"rule-a"})

    def test_multiple_rules_and_all(self):
        index = self._index(
            "x = f()  # repro-lint: disable=rule-a, rule-b\n"
            "y = g()  # repro-lint: disable=all\n"
        )
        assert index.is_suppressed("rule-a", 1)
        assert index.is_suppressed("rule-b", 1)
        assert index.is_suppressed("anything", 2)

    def test_disable_file_only_near_top(self):
        head = "# repro-lint: disable-file=rule-a\n" + "x = 1\n" * 20
        index = self._index(head)
        assert index.is_suppressed("rule-a", 15)

        tail = "x = 1\n" * 20 + "# repro-lint: disable-file=rule-a\n"
        index = self._index(tail)
        assert not index.is_suppressed("rule-a", 1)


class TestBaseline:
    def _finding(self, line: int, content: str, occ_path: str = "src/a.py"):
        return Finding(
            rule="assert-in-library",
            path=occ_path,
            line=line,
            col=4,
            message="m",
            line_content=content,
        )

    def test_round_trip(self, tmp_path):
        findings = [self._finding(3, "assert x"), self._finding(9, "assert y")]
        target = tmp_path / "baseline.json"
        Baseline.from_findings(findings, path=target).save()

        loaded = Baseline.load(target)
        fresh, known = loaded.filter(findings)
        assert fresh == [] and len(known) == 2

    def test_line_moves_do_not_resurrect(self, tmp_path):
        baseline = Baseline.from_findings([self._finding(3, "assert x")])
        moved = [self._finding(42, "assert x")]  # edited code above it
        fresh, known = baseline.filter(moved)
        assert fresh == [] and len(known) == 1

    def test_content_change_does_resurrect(self):
        baseline = Baseline.from_findings([self._finding(3, "assert x")])
        fresh, known = baseline.filter([self._finding(3, "assert x or y")])
        assert len(fresh) == 1 and known == []

    def test_occurrence_indexing(self):
        # Two identical lines in one file: grandfathering the first must
        # not hide a second, newly added copy.
        baseline = Baseline.from_findings([self._finding(3, "assert x")])
        both = [self._finding(3, "assert x"), self._finding(30, "assert x")]
        fresh, known = baseline.filter(both)
        assert len(known) == 1 and len(fresh) == 1

    def test_windows_paths_normalize(self):
        finding = self._finding(1, "assert x", occ_path="src\\a.py")
        baseline = Baseline.from_findings([finding])
        fresh, known = baseline.filter([self._finding(1, "assert x", "./src/a.py")])
        assert fresh == [] and len(known) == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed baseline"):
            Baseline.load(bad)
        bad.write_text('{"no_findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="no 'findings' key"):
            Baseline.load(bad)


class TestRunner:
    def test_collect_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["a.py"]

    def test_lint_paths_reports_syntax_errors(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.n_files == 0
        assert len(report.errors) == 1
        assert not report.ok

    def test_lint_paths_counts_suppressions(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def f(x=[]):  # repro-lint: disable=mutable-default-arg\n"
            "    return x\n",
            encoding="utf-8",
        )
        report = lint_paths([tmp_path])
        assert report.findings == []
        assert report.n_suppressed == 1
        assert report.ok


class TestReporters:
    def _report(self) -> LintReport:
        finding = Finding(
            rule="broad-except", path="src/x.py", line=4, col=8,
            message="why", line_content="except Exception:",
        )
        old = Finding(
            rule="assert-in-library", path="src/y.py", line=2, col=0,
            message="old", line_content="assert z",
        )
        return LintReport(
            findings=[finding], baselined=[old], n_suppressed=3, n_files=7
        )

    def test_text_summary(self):
        text = render_text(self._report())
        assert "src/x.py:4:9: broad-except: why" in text
        assert "1 finding(s), 1 baselined, 3 suppressed, 7 file(s) checked" in text
        assert "src/y.py" not in text  # baselined hidden by default

    def test_text_show_baselined(self):
        text = render_text(self._report(), show_baselined=True)
        assert "grandfathered" in text
        assert "src/y.py:2:1: assert-in-library: old" in text

    def test_json_payload(self):
        payload = json.loads(render_json(self._report()))
        assert payload["files_checked"] == 7
        assert payload["suppressed"] == 3
        assert payload["by_rule"] == {"broad-except": 1}
        assert payload["findings"][0]["rule"] == "broad-except"
        assert payload["baselined"][0]["rule"] == "assert-in-library"


# ---------------------------------------------------------------------------
# CLI exit codes (acceptance criterion: non-zero on each rule's
# positive fixture, zero on clean code)
# ---------------------------------------------------------------------------

#: rule id -> (path inside tmp dir, positive snippet). Paths put scoped
#: rules inside their scope via the src/repro/... module derivation.
POSITIVE_FIXTURES = {
    "lock-blocking-call": (
        "src/repro/serve/fixture.py",
        """
        class S:
            def submit(self, item):
                with self._lock:
                    self._queue.put(item)
        """,
    ),
    "guarded-attr": (
        "src/repro/serve/fixture.py",
        """
        class R:
            def __init__(self):
                self._models = {}  # guarded-by: _lock

            def names(self):
                return sorted(self._models)
        """,
    ),
    "np-array-dtype": (
        "src/repro/core/fixture.py",
        """
        import numpy as np

        def stack(rows):
            return np.array(rows)
        """,
    ),
    "float-equality": (
        "src/repro/core/fixture.py",
        """
        def is_unit(x):
            return x == 1.0
        """,
    ),
    "scalar-embed-loop": (
        "src/repro/embeddings/fixture.py",
        """
        def embed(embedder, terms):
            return [embedder.vector(t) for t in terms]
        """,
    ),
    "unseeded-rng": (
        "src/repro/core/fixture.py",
        """
        import numpy as np

        def sample(pool):
            return np.random.default_rng().choice(pool)
        """,
    ),
    "data-dependent-seed": (
        "src/repro/core/fixture.py",
        """
        import numpy as np

        def sample(pool):
            return np.random.default_rng(len(pool)).choice(pool)
        """,
    ),
    "mutable-default-arg": (
        "src/repro/util/fixture.py",
        """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
        """,
    ),
    "broad-except": (
        "src/repro/util/fixture.py",
        """
        def safe(fn):
            try:
                return fn()
            except Exception:
                return None
        """,
    ),
    "assert-in-library": (
        "src/repro/util/fixture.py",
        """
        def halve(n):
            assert n % 2 == 0
            return n // 2
        """,
    ),
}


def _write_fixture(tmp_path, relpath: str, snippet: str):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(snippet), encoding="utf-8")
    return target


class TestLintCli:
    @pytest.mark.parametrize("rule_id", sorted(POSITIVE_FIXTURES))
    def test_positive_fixture_exits_nonzero(self, rule_id, tmp_path, capsys):
        relpath, snippet = POSITIVE_FIXTURES[rule_id]
        target = _write_fixture(tmp_path, relpath, snippet)
        code = main(["lint", str(target), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert rule_id in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = _write_fixture(
            tmp_path,
            "src/repro/core/clean.py",
            """
            import numpy as np

            def stack(rows):
                return np.array(rows, dtype=np.float64)
            """,
        )
        code = main(["lint", str(target), "--no-baseline"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        relpath, snippet = POSITIVE_FIXTURES["broad-except"]
        target = _write_fixture(tmp_path, relpath, snippet)
        code = main(["lint", str(target), "--no-baseline", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["by_rule"] == {"broad-except": 1}

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        relpath, snippet = POSITIVE_FIXTURES["assert-in-library"]
        target = _write_fixture(tmp_path, relpath, snippet)
        baseline = tmp_path / "baseline.json"

        code = main(
            ["lint", str(target), "--write-baseline", "--baseline", str(baseline)]
        )
        assert code == 0
        assert baseline.exists()

        code = main(["lint", str(target), "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

        # --no-baseline resurfaces the grandfathered finding.
        code = main(["lint", str(target), "--no-baseline"])
        assert code == 1

    def test_select_and_ignore_flags(self, tmp_path, capsys):
        relpath, snippet = POSITIVE_FIXTURES["assert-in-library"]
        target = _write_fixture(tmp_path, relpath, snippet)
        code = main(
            ["lint", str(target), "--no-baseline", "--select", "broad-except"]
        )
        assert code == 0
        code = main(
            ["lint", str(target), "--no-baseline",
             "--ignore", "assert-in-library"]
        )
        assert code == 0

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--select", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        code = main(["lint", str(tmp_path), "--baseline", str(bad)])
        assert code == 2
        assert "malformed baseline" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out
