"""Spawn-boundary pickle-safety pass (``spawn-unsafe-arg``).

The must-fail fixture in ``test_lock_capture_via_initargs_is_detected``
is the shape the analyzer exists to catch: an object transitively
holding a ``threading.Lock`` handed to ``ProcessPoolExecutor``
initargs, which either crashes the spawn (``cannot pickle``) or
silently rebuilds thread-local state in the child.
"""

from __future__ import annotations

from repro.analysis import analyze_sources
from repro.analysis.passes import get_pass


def _run(sources: dict[str, str], *pass_ids: str):
    passes = [get_pass(p) for p in pass_ids]
    return analyze_sources(sources, passes=passes)


LOCK_CAPTURE = '''
import threading
from concurrent.futures import ProcessPoolExecutor

class SharedState:
    def __init__(self):
        self._lock = threading.Lock()
        self.counts = {}

def _init_worker(state):
    return state

def launch():
    state = SharedState()
    return ProcessPoolExecutor(
        max_workers=2, initializer=_init_worker, initargs=(state,)
    )
'''


def test_lock_capture_via_initargs_is_detected():
    findings = _run({"src/app/pool.py": LOCK_CAPTURE}, "spawn-unsafe-arg")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "spawn-unsafe-arg"
    assert "SharedState" in finding.message
    assert "threading lock" in finding.message
    assert "initargs=" in finding.message


def test_lambda_initializer_is_flagged():
    source = '''
from concurrent.futures import ProcessPoolExecutor

def launch():
    return ProcessPoolExecutor(initializer=lambda: None)
'''
    findings = _run({"src/app/pool.py": source}, "spawn-unsafe-arg")
    assert len(findings) == 1
    assert "lambda" in findings[0].message


def test_nested_function_target_is_flagged():
    source = '''
from multiprocessing import Process

def launch():
    def worker():
        return None
    return Process(target=worker, args=())
'''
    findings = _run({"src/app/proc.py": source}, "spawn-unsafe-arg")
    assert len(findings) == 1
    assert "nested function" in findings[0].message
    assert "hoist" in findings[0].message


def test_bound_method_submit_target_is_flagged():
    source = '''
from concurrent.futures import ProcessPoolExecutor

class Runner:
    def __init__(self):
        self._pool = ProcessPoolExecutor()

    def go(self):
        return self._pool.submit(self._work, 1)

    def _work(self, x):
        return x
'''
    findings = _run({"src/app/runner.py": source}, "spawn-unsafe-arg")
    assert len(findings) == 1
    assert "bound method" in findings[0].message


def test_thread_pool_submit_is_not_flagged():
    # .submit on a *thread* pool crosses no pickle boundary; without
    # constructor evidence of a ProcessPoolExecutor there is no finding
    # even when the shipped value holds a lock.
    source = '''
import threading
from concurrent.futures import ThreadPoolExecutor

class Runner:
    def __init__(self):
        self._pool = ThreadPoolExecutor()
        self._lock = threading.Lock()

    def go(self):
        return self._pool.submit(self._work, self._lock)

    def _work(self, lock):
        return lock
'''
    assert _run({"src/app/runner.py": source}, "spawn-unsafe-arg") == []


def test_plain_data_args_are_clean():
    source = '''
from concurrent.futures import ProcessPoolExecutor

def _init_worker(path, count):
    return path

def launch(path):
    return ProcessPoolExecutor(
        initializer=_init_worker, initargs=(path, 3)
    )
'''
    assert _run({"src/app/pool.py": source}, "spawn-unsafe-arg") == []


def test_transitively_unpicklable_instance_is_flagged():
    # Engine holds no lock itself, but holds a Meter that does; the
    # transitive closure must taint it.
    source = '''
import threading
from multiprocessing import Process

class Meter:
    def __init__(self):
        self._lock = threading.Lock()

class Engine:
    def __init__(self):
        self.meter = Meter()

def _main(engine):
    return engine

def launch():
    engine = Engine()
    return Process(target=_main, args=(engine,))
'''
    findings = _run({"src/app/engine.py": source}, "spawn-unsafe-arg")
    assert len(findings) == 1
    assert "Engine" in findings[0].message
    assert "Meter" in findings[0].message


def test_shipping_self_from_tainted_class_is_flagged():
    source = '''
import threading
from multiprocessing import Process

def _main(owner):
    return owner

class Owner:
    def __init__(self):
        self._lock = threading.Lock()

    def launch(self):
        return Process(target=_main, args=(self,))
'''
    findings = _run({"src/app/owner.py": source}, "spawn-unsafe-arg")
    assert len(findings) == 1
    assert "'self'" in findings[0].message
