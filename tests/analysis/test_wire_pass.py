"""Router/worker wire-schema conformance pass (``wire-asymmetry``).

Each fixture pairs a client module (builds request dicts, reads
replies) with a worker module (dispatches on ``request["op"]``, builds
replies) and asserts the pass recovers both schemas and fails only on
genuine asymmetry.
"""

from __future__ import annotations

from repro.analysis import analyze_sources
from repro.analysis.passes import get_pass


def _run(sources: dict[str, str], *pass_ids: str):
    passes = [get_pass(p) for p in pass_ids]
    return analyze_sources(sources, passes=passes)


CLIENT = '''
from app.protocol import send_message, recv_message

def classify(sock, record):
    request = {"op": "classify", "id": 7, "record": record}
    send_message(sock, request)
    reply = recv_message(sock)
    return reply.get("labels")
'''

WORKER = '''
from app.protocol import send_message, recv_message

def serve(sock):
    request = recv_message(sock)
    op = request.get("op")
    if op == "classify":
        reply = {"ok": True, "labels": request["record"]}
        send_message(sock, reply)
'''


def test_symmetric_schema_is_clean():
    assert _run(
        {"src/app/client.py": CLIENT, "src/app/worker.py": WORKER},
        "wire-asymmetry",
    ) == []


def test_op_without_handler_is_flagged():
    client = CLIENT + '''

def shutdown(sock):
    send_message(sock, {"op": "shutdown"})
'''
    findings = _run(
        {"src/app/client.py": client, "src/app/worker.py": WORKER},
        "wire-asymmetry",
    )
    assert len(findings) == 1
    assert "'shutdown'" in findings[0].message
    assert "no analyzed worker handles it" in findings[0].message


def test_dead_handler_is_flagged():
    worker = WORKER.replace(
        'if op == "classify":',
        'if op == "ping":\n'
        '        send_message(sock, {"ok": True})\n'
        '    elif op == "classify":',
    )
    findings = _run(
        {"src/app/client.py": CLIENT, "src/app/worker.py": worker},
        "wire-asymmetry",
    )
    assert len(findings) == 1
    assert "'ping'" in findings[0].message
    assert "dead handler" in findings[0].message


def test_request_field_never_sent_is_flagged():
    worker = WORKER.replace(
        'request["record"]', 'request["record"] if request["trace"] else None'
    )
    findings = _run(
        {"src/app/client.py": CLIENT, "src/app/worker.py": worker},
        "wire-asymmetry",
    )
    assert len(findings) == 1
    assert "'trace'" in findings[0].message
    assert "no analyzed client ever sends" in findings[0].message


def test_reply_field_never_sent_is_flagged():
    client = CLIENT.replace(
        'reply.get("labels")', 'reply.get("labels"), reply.get("spans")'
    )
    findings = _run(
        {"src/app/client.py": client, "src/app/worker.py": WORKER},
        "wire-asymmetry",
    )
    assert len(findings) == 1
    assert "'spans'" in findings[0].message
    assert "no analyzed worker ever sends" in findings[0].message


def test_request_field_stored_via_subscript_counts_as_sent():
    # Enrichment after the literal (request["trace"] = ...) must count
    # as produced — the fleet router decorates requests this way.
    client = CLIENT.replace(
        "    send_message(sock, request)",
        '    request["trace"] = True\n    send_message(sock, request)',
    )
    worker = WORKER.replace(
        'request["record"]', 'request["record"] if request["trace"] else None'
    )
    assert _run(
        {"src/app/client.py": client, "src/app/worker.py": worker},
        "wire-asymmetry",
    ) == []


def test_single_side_alone_reports_nothing():
    # Analyzing the client without any worker (or vice versa) proves
    # nothing about the schema; the pass must stay silent.
    assert _run({"src/app/client.py": CLIENT}, "wire-asymmetry") == []
    assert _run({"src/app/worker.py": WORKER}, "wire-asymmetry") == []


def test_suppressed_test_hook_is_dismissed():
    worker = WORKER.replace(
        'if op == "classify":',
        "# Crash hook exists for supervision tests only; no client\n"
        "    # produces it by design.\n"
        "    # repro-lint: disable=wire-asymmetry\n"
        '    if op == "crash":\n'
        "        raise SystemExit(1)\n"
        '    if op == "classify":',
    )
    assert _run(
        {"src/app/client.py": CLIENT, "src/app/worker.py": worker},
        "wire-asymmetry",
    ) == []


def test_extra_produced_fields_are_not_findings():
    # Senders may enrich ahead of readers: extra request fields from
    # the client and extra reply fields from the worker are fine.
    client = CLIENT.replace(
        '"record": record}', '"record": record, "deadline": 1.5}'
    )
    worker = WORKER.replace(
        '"labels": request["record"]}',
        '"labels": request["record"], "clock": 0.0}',
    )
    assert _run(
        {"src/app/client.py": client, "src/app/worker.py": worker},
        "wire-asymmetry",
    ) == []
