"""Fixture tests for the concurrency rule family.

Every rule gets the four-quadrant treatment: positive (fires),
negative (clean), suppressed (inline disable), baselined (fingerprint
in a Baseline filters it).
"""

from __future__ import annotations

import textwrap

from repro.analysis import Baseline, lint_source


def _lint(source: str, rule: str, module: str | None = None):
    return [
        f
        for f in lint_source(textwrap.dedent(source), module=module)
        if f.rule == rule
    ]


LOCKED_QUEUE_PUT = """
    import threading, queue

    class Submitter:
        def __init__(self):
            self._lock = threading.Lock()
            self._queue = queue.Queue(8)

        def submit(self, item):
            with self._lock:
                self._queue.put(item)
"""


class TestLockBlockingCall:
    def test_positive_queue_put(self):
        findings = _lint(LOCKED_QUEUE_PUT, "lock-blocking-call")
        assert len(findings) == 1
        assert "queue.put" in findings[0].message
        assert "'_lock'" in findings[0].message

    def test_positive_thread_join(self):
        findings = _lint(
            """
            class S:
                def stop(self):
                    with self._lock:
                        self._collector.join()
            """,
            "lock-blocking-call",
        )
        assert len(findings) == 1
        assert "thread join" in findings[0].message

    def test_positive_model_load_and_sleep(self):
        findings = _lint(
            """
            import time
            class R:
                def register(self, path):
                    with self._lock:
                        time.sleep(0.1)
                        return load_pipeline(path)
            """,
            "lock-blocking-call",
        )
        assert {("sleep" in f.message or "deserialization" in f.message)
                for f in findings} == {True}
        assert len(findings) == 2

    def test_positive_nested_lock(self):
        findings = _lint(
            """
            class T:
                def transfer(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass
            """,
            "lock-blocking-call",
        )
        assert len(findings) == 1
        assert "deadlock" in findings[0].message

    def test_negative_dict_get_and_str_join(self):
        findings = _lint(
            """
            class M:
                def snapshot(self):
                    with self._lock:
                        value = self._counters.get("requests", 0)
                        label = ",".join(sorted(self._names))
                        return value, label
            """,
            "lock-blocking-call",
        )
        assert findings == []

    def test_negative_put_outside_lock(self):
        findings = _lint(
            """
            class S:
                def submit(self, item):
                    with self._lock:
                        token = self._next_token()
                    self._queue.put((token, item))
            """,
            "lock-blocking-call",
        )
        assert findings == []

    def test_negative_nested_def_not_attributed(self):
        # A nested function defined (not called) under the lock runs
        # later, without the lock — its body must not be flagged.
        findings = _lint(
            """
            class S:
                def make_cb(self):
                    with self._lock:
                        def cb():
                            self._queue.put(1)
                        return cb
            """,
            "lock-blocking-call",
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            class S:
                def submit(self, item):
                    with self._gate:
                        # repro-lint: disable=lock-blocking-call - ordering
                        # is load-bearing; consumer never takes _gate.
                        self._queue.put(item)
            """,
            "lock-blocking-call",
        )
        assert findings == []

    def test_baselined(self):
        raw = lint_source(textwrap.dedent(LOCKED_QUEUE_PUT), path="fixture.py")
        raw = [f for f in raw if f.rule == "lock-blocking-call"]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == []
        assert len(known) == 1


GUARDED_BAD = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._models = {}  # guarded-by: _lock

        def names(self):
            return sorted(self._models)
"""


class TestGuardedAttr:
    def test_positive(self):
        findings = _lint(GUARDED_BAD, "guarded-attr")
        assert len(findings) == 1
        assert "self._models" in findings[0].message

    def test_negative_guarded_access(self):
        findings = _lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._models = {}  # guarded-by: _lock

                def names(self):
                    with self._lock:
                        return sorted(self._models)
            """,
            "guarded-attr",
        )
        assert findings == []

    def test_negative_unannotated_attr_is_free(self):
        findings = _lint(
            """
            class Registry:
                def __init__(self):
                    self._models = {}

                def names(self):
                    return sorted(self._models)
            """,
            "guarded-attr",
        )
        assert findings == []

    def test_init_exempt(self):
        findings = _lint(
            """
            class Registry:
                def __init__(self):
                    self._models = {}  # guarded-by: _lock
                    self._models["default"] = None
            """,
            "guarded-attr",
        )
        assert findings == []

    def test_positive_bound_method_reference(self):
        # Passing self._items.discard as a callback is an access too.
        findings = _lint(
            """
            class Pool:
                def __init__(self):
                    self._items = set()  # guarded-by: _lock

                def watch(self, future):
                    future.add_done_callback(self._items.discard)
            """,
            "guarded-attr",
        )
        assert len(findings) == 1

    def test_positive_access_after_with_block(self):
        findings = _lint(
            """
            class Pool:
                def __init__(self):
                    self._items = set()  # guarded-by: _lock

                def drain(self):
                    with self._lock:
                        snapshot = list(self._items)
                    self._items.clear()
                    return snapshot
            """,
            "guarded-attr",
        )
        assert len(findings) == 1
        assert findings[0].line == 9

    def test_wrong_lock_held_still_fires(self):
        findings = _lint(
            """
            class Pool:
                def __init__(self):
                    self._items = set()  # guarded-by: _items_lock

                def size(self):
                    with self._other_lock:
                        return len(self._items)
            """,
            "guarded-attr",
        )
        assert len(findings) == 1

    def test_suppressed(self):
        findings = _lint(
            """
            class Registry:
                def __init__(self):
                    self._models = {}  # guarded-by: _lock

                def names(self):
                    # repro-lint: disable=guarded-attr - read-only snapshot
                    return sorted(self._models)
            """,
            "guarded-attr",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(textwrap.dedent(GUARDED_BAD), path="g.py")
            if f.rule == "guarded-attr"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1
