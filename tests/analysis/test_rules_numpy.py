"""Fixture tests for the numpy-contract rule family."""

from __future__ import annotations

import textwrap

from repro.analysis import Baseline, lint_source


def _lint(source: str, rule: str, module: str | None = "repro.core.fixture"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), module=module)
        if f.rule == rule
    ]


NP_ARRAY_NO_DTYPE = """
    import numpy as np

    def stack(rows):
        return np.array(rows)
"""


class TestNpArrayDtype:
    def test_positive(self):
        findings = _lint(NP_ARRAY_NO_DTYPE, "np-array-dtype")
        assert len(findings) == 1
        assert "dtype" in findings[0].message

    def test_positive_numpy_alias(self):
        findings = _lint(
            """
            import numpy

            def stack(rows):
                return numpy.array(rows)
            """,
            "np-array-dtype",
        )
        assert len(findings) == 1

    def test_negative_with_dtype(self):
        findings = _lint(
            """
            import numpy as np

            def stack(rows):
                return np.array(rows, dtype=np.float64)
            """,
            "np-array-dtype",
        )
        assert findings == []

    def test_negative_other_constructors(self):
        findings = _lint(
            """
            import numpy as np

            def build(n):
                return np.zeros(n), np.asarray([n]), np.empty(n)
            """,
            "np-array-dtype",
        )
        assert findings == []

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(
            NP_ARRAY_NO_DTYPE, "np-array-dtype", module="repro.serve.service"
        )
        assert findings == []

    def test_embeddings_scope_applies(self):
        findings = _lint(
            NP_ARRAY_NO_DTYPE, "np-array-dtype", module="repro.embeddings.ppmi"
        )
        assert len(findings) == 1

    def test_suppressed(self):
        findings = _lint(
            """
            import numpy as np

            def stack(rows):
                # repro-lint: disable=np-array-dtype - ragged input is
                # intentionally an object array here.
                return np.array(rows)
            """,
            "np-array-dtype",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(
                textwrap.dedent(NP_ARRAY_NO_DTYPE),
                path="fix.py",
                module="repro.core.fixture",
            )
            if f.rule == "np-array-dtype"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1


FLOAT_EQ = """
    def is_unit(score):
        return score == 1.0
"""


class TestFloatEquality:
    def test_positive(self):
        findings = _lint(FLOAT_EQ, "float-equality")
        assert len(findings) == 1

    def test_positive_negative_literal_and_noteq(self):
        findings = _lint(
            """
            def check(x, y):
                return x != -0.5 or -1.5 == y
            """,
            "float-equality",
        )
        assert len(findings) == 2

    def test_negative_int_and_comparison_ops(self):
        findings = _lint(
            """
            def check(x):
                return x == 1 or x >= 0.5 or x < 2.0
            """,
            "float-equality",
        )
        assert findings == []

    def test_negative_isclose(self):
        findings = _lint(
            """
            import numpy as np

            def check(x):
                return np.isclose(x, 1.0)
            """,
            "float-equality",
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            def is_sentinel(x):
                # repro-lint: disable=float-equality - sentinel is assigned,
                # never computed, so exact comparison is sound.
                return x == -1.0
            """,
            "float-equality",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(
                textwrap.dedent(FLOAT_EQ), path="eq.py", module="repro.core.x"
            )
            if f.rule == "float-equality"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1


SCALAR_LOOP = """
    def embed_all(embedder, terms):
        out = []
        for term in terms:
            out.append(embedder.vector(term))
        return out
"""


class TestScalarEmbedLoop:
    def test_positive_for_loop(self):
        findings = _lint(SCALAR_LOOP, "scalar-embed-loop")
        assert len(findings) == 1
        assert "batch" in findings[0].message

    def test_positive_comprehension(self):
        findings = _lint(
            """
            def embed_all(embedder, terms):
                return [embedder.vector(t) for t in terms]
            """,
            "scalar-embed-loop",
        )
        assert len(findings) == 1

    def test_nested_loop_reports_once(self):
        findings = _lint(
            """
            def embed_tables(embedder, tables):
                out = []
                for table in tables:
                    for term in table:
                        out.append(embedder.vector(term))
                return out
            """,
            "scalar-embed-loop",
        )
        assert len(findings) == 1

    def test_negative_batched(self):
        findings = _lint(
            """
            def embed_all(embedder, terms):
                return embedder.vectors(terms)
            """,
            "scalar-embed-loop",
        )
        assert findings == []

    def test_negative_single_call_outside_loop(self):
        findings = _lint(
            """
            def embed_one(embedder, term):
                return embedder.vector(term)
            """,
            "scalar-embed-loop",
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            def embed_all(embedder, terms):
                # repro-lint: disable=scalar-embed-loop - backend has no
                # batch API; this is the compatibility fallback.
                return [embedder.vector(t) for t in terms]
            """,
            "scalar-embed-loop",
        )
        assert findings == []

    def test_baselined(self):
        raw = [
            f
            for f in lint_source(
                textwrap.dedent(SCALAR_LOOP),
                path="loop.py",
                module="repro.embeddings.x",
            )
            if f.rule == "scalar-embed-loop"
        ]
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1
