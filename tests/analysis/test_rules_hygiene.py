"""Fixture tests for the hygiene rule family (tree-wide scope)."""

from __future__ import annotations

import textwrap

from repro.analysis import Baseline, lint_source


def _lint(source: str, rule: str, module: str | None = None, path: str = "<string>"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), module=module, path=path)
        if f.rule == rule
    ]


MUTABLE_DEFAULT = """
    def collect(item, bucket=[]):
        bucket.append(item)
        return bucket
"""


class TestMutableDefaultArg:
    def test_positive_list_literal(self):
        findings = _lint(MUTABLE_DEFAULT, "mutable-default-arg")
        assert len(findings) == 1
        assert "collect" in findings[0].message

    def test_positive_dict_set_and_constructors(self):
        findings = _lint(
            """
            def f(a={}, b=set(), c=dict(), *, d=list()):
                return a, b, c, d
            """,
            "mutable-default-arg",
        )
        assert len(findings) == 4

    def test_positive_lambda(self):
        findings = _lint(
            "f = lambda x, acc=[]: acc + [x]\n", "mutable-default-arg"
        )
        assert len(findings) == 1
        assert "<lambda>" in findings[0].message

    def test_negative_none_and_immutables(self):
        findings = _lint(
            """
            def f(a=None, b=(), c="x", d=0, e=frozenset()):
                return a, b, c, d, e
            """,
            "mutable-default-arg",
        )
        assert findings == []

    def test_applies_everywhere(self):
        # Hygiene rules are unscoped: serve-layer modules are covered too.
        findings = _lint(
            MUTABLE_DEFAULT, "mutable-default-arg", module="repro.serve.service"
        )
        assert len(findings) == 1

    def test_suppressed(self):
        findings = _lint(
            """
            # repro-lint: disable=mutable-default-arg - memo cache is
            # intentionally shared across calls.
            def collect(item, bucket=[]):
                bucket.append(item)
                return bucket
            """,
            "mutable-default-arg",
        )
        assert findings == []

    def test_baselined(self):
        raw = _lint(MUTABLE_DEFAULT, "mutable-default-arg", path="mut.py")
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1


BROAD_EXCEPT = """
    def safe(fn):
        try:
            return fn()
        except Exception:
            return None
"""


class TestBroadExcept:
    def test_positive_no_rationale(self):
        findings = _lint(BROAD_EXCEPT, "broad-except")
        assert len(findings) == 1
        assert "rationale" in findings[0].message

    def test_positive_bare_and_tuple(self):
        findings = _lint(
            """
            def safe(fn):
                try:
                    return fn()
                except (ValueError, BaseException):
                    pass
                try:
                    return fn()
                except:
                    pass
            """,
            "broad-except",
        )
        assert len(findings) == 2

    def test_negative_with_rationale_comment(self):
        findings = _lint(
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:  # plugin boundary: keep the loop alive
                    return None
            """,
            "broad-except",
        )
        assert findings == []

    def test_negative_rationale_line_above(self):
        findings = _lint(
            """
            def safe(fn):
                try:
                    return fn()
                # worker thread must never die; errors are re-raised on get()
                except Exception:
                    return None
            """,
            "broad-except",
        )
        assert findings == []

    def test_negative_narrow_handler(self):
        findings = _lint(
            """
            def safe(fn):
                try:
                    return fn()
                except (ValueError, KeyError):
                    return None
            """,
            "broad-except",
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:  # repro-lint: disable=broad-except
                    return None
            """,
            "broad-except",
        )
        assert findings == []

    def test_baselined(self):
        raw = _lint(BROAD_EXCEPT, "broad-except", path="be.py")
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1


ASSERT_SNIPPET = """
    def halve(n):
        assert n % 2 == 0, "n must be even"
        return n // 2
"""


class TestAssertInLibrary:
    def test_positive_in_library_module(self):
        findings = _lint(
            ASSERT_SNIPPET, "assert-in-library", module="repro.core.util"
        )
        assert len(findings) == 1
        assert "python -O" in findings[0].message

    def test_negative_test_module_name(self):
        findings = _lint(
            ASSERT_SNIPPET, "assert-in-library", module="tests.core.test_util"
        )
        assert findings == []

    def test_negative_test_file_path(self):
        for path in ("tests/core/test_util.py", "test_util.py", "conftest.py"):
            assert (
                _lint(ASSERT_SNIPPET, "assert-in-library", path=path) == []
            ), path

    def test_negative_no_assert(self):
        findings = _lint(
            """
            def halve(n):
                if n % 2:
                    raise ValueError("n must be even")
                return n // 2
            """,
            "assert-in-library",
            module="repro.core.util",
        )
        assert findings == []

    def test_suppressed(self):
        findings = _lint(
            """
            def halve(n):
                # repro-lint: disable=assert-in-library - internal invariant,
                # unreachable from public API.
                assert n % 2 == 0
                return n // 2
            """,
            "assert-in-library",
            module="repro.core.util",
        )
        assert findings == []

    def test_file_wide_suppression(self):
        findings = _lint(
            """
            # repro-lint: disable-file=assert-in-library
            def halve(n):
                assert n % 2 == 0
                return n // 2

            def third(n):
                assert n % 3 == 0
                return n // 3
            """,
            "assert-in-library",
            module="repro.core.util",
        )
        assert findings == []

    def test_baselined(self):
        raw = _lint(
            ASSERT_SNIPPET,
            "assert-in-library",
            module="repro.core.util",
            path="lib.py",
        )
        baseline = Baseline.from_findings(raw)
        fresh, known = baseline.filter(raw)
        assert fresh == [] and len(known) == 1
