"""CLI contract for ``repro analyze`` (exit codes, staleness, verdict).

The exit-code regression tests pin the PR 8 bugfix: the text summary
line always carries the verdict (``-- ok`` / ``-- FAIL``), so the
output can never look clean while the process exits 1.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

DEADLOCK = '''
import threading

class Batcher:
    def __init__(self):
        self._gate = threading.Lock()
        self._queue_lock = threading.Lock()

    def submit(self, item):
        with self._gate:
            with self._queue_lock:
                return item

    def collect(self):
        with self._queue_lock:
            self._reopen()

    def _reopen(self):
        with self._gate:
            return None
'''

CLEAN = '''
def double(x):
    return 2 * x
'''


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    package = tmp_path / "src" / "app"
    package.mkdir(parents=True)
    return package


def _write(package: Path, name: str, source: str) -> Path:
    path = package / name
    path.write_text(source)
    return path


def test_analyze_clean_tree_exits_zero(tree, capsys):
    _write(tree, "math.py", CLEAN)
    assert main(["analyze", "src", "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert out.rstrip().endswith("-- ok")


def test_analyze_deadlock_exits_one_with_fail_verdict(tree, capsys):
    _write(tree, "batching.py", DEADLOCK)
    assert main(["analyze", "src", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "lock-order-cycle" in out
    assert "-- FAIL" in out
    assert not out.rstrip().endswith("-- ok")


def test_list_passes_exits_zero(capsys):
    assert main(["analyze", "--list-passes"]) == 0
    out = capsys.readouterr().out
    for pass_id in (
        "lock-order-cycle",
        "lock-reacquire-via-call",
        "spawn-unsafe-arg",
        "mmap-write",
        "wire-asymmetry",
    ):
        assert pass_id in out


def test_unknown_pass_id_exits_two(tree, capsys):
    _write(tree, "math.py", CLEAN)
    assert main(["analyze", "src", "--select", "no-such-pass"]) == 2


def test_baselined_finding_exits_zero_then_stale_check_fails(
    tree, capsys
):
    # Grandfather the deadlock, then fix it: without --check-stale the
    # run stays green, with it the leftover entry fails the run.
    path = _write(tree, "batching.py", DEADLOCK)
    baseline = "analyze-baseline.json"
    assert main(
        ["analyze", "src", "--baseline", baseline, "--write-baseline"]
    ) == 0
    assert main(["analyze", "src", "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "2 baselined" in out  # the cycle + its held-call warning

    fixed = DEADLOCK.replace(
        "        with self._queue_lock:\n            self._reopen()",
        "        self._reopen()",
    )
    assert fixed != DEADLOCK
    path.write_text(fixed)
    assert main(["analyze", "src", "--baseline", baseline]) == 0
    assert (
        main(["analyze", "src", "--baseline", baseline, "--check-stale"])
        == 1
    )
    err = capsys.readouterr().err
    assert "stale baseline entry" in err


def test_partial_baseline_exits_one_and_summary_says_fail(tree, capsys):
    # The PR 8 exit-contract regression: one finding baselined, one
    # new — exit 1 and the summary line must say FAIL, not look clean.
    source = DEADLOCK + '''

from concurrent.futures import ProcessPoolExecutor

def launch():
    return ProcessPoolExecutor(initializer=lambda: None)
'''
    _write(tree, "batching.py", source)
    baseline = "analyze-baseline.json"
    assert main(
        [
            "analyze", "src", "--baseline", baseline,
            "--select", "lock-order-cycle", "--write-baseline",
        ]
    ) == 0
    capsys.readouterr()
    assert main(["analyze", "src", "--baseline", baseline]) == 1
    out = capsys.readouterr().out
    assert "2 finding(s), 1 baselined" in out
    assert "spawn-unsafe-arg" in out
    assert "-- FAIL (1 gating" in out


def test_deep_lint_runs_program_passes(tree, capsys):
    # No lexically nested withs — the per-file rules see nothing; only
    # the whole-program pass (via held-call footprints) finds the cycle.
    source = '''
import threading

class Batcher:
    def __init__(self):
        self._gate = threading.Lock()
        self._queue_lock = threading.Lock()

    def submit(self):
        with self._gate:
            self._enqueue()

    def _enqueue(self):
        with self._queue_lock:
            return None

    def collect(self):
        with self._queue_lock:
            self._reopen()

    def _reopen(self):
        with self._gate:
            return None
'''
    _write(tree, "batching.py", source)
    assert main(["lint", "src", "--no-baseline"]) == 0
    assert main(["lint", "src", "--no-baseline", "--deep"]) == 1
    out = capsys.readouterr().out
    assert "lock-order-cycle" in out
