"""Focused unit tests for smaller behaviours across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import accuracy_map_to_percent
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import SMOKE, PAPER


class TestReportingFloats:
    def test_percent_scale_one_decimal(self):
        text = ascii_table(["v"], [[99.64]])
        assert "99.6" in text

    def test_small_floats_keep_precision(self):
        text = ascii_table(["v"], [[0.00414]])
        assert "0.00414" in text

    def test_zero_stays_zero(self):
        text = ascii_table(["v"], [[0.0]])
        assert "| 0.0" in text


class TestMetricsHelpers:
    def test_accuracy_map_to_percent(self):
        assert accuracy_map_to_percent({1: 0.9561, 2: 1.0}) == {
            1: 95.6,
            2: 100.0,
        }
        assert accuracy_map_to_percent({}) == {}


class TestScales:
    def test_smoke_smaller_than_paper(self):
        assert SMOKE.n_train <= PAPER.n_train
        assert SMOKE.n_stratified <= PAPER.n_stratified

    def test_names(self):
        assert SMOKE.name == "smoke"
        assert PAPER.name == "paper"


class TestLLMPromptEdges:
    def test_prompt_with_empty_cells(self):
        from repro.baselines.llm.prompts import build_user_prompt
        from repro.tables.model import Table

        table = Table([["", ""], ["", ""]])
        prompt = build_user_prompt(table)
        assert "2 rows and 2 columns" in prompt

    def test_response_format_empty_claims(self):
        from repro.baselines.llm.prompts import format_llm_response

        text = format_llm_response({}, {}, n_rows=0)
        assert "HMD: none" in text
        assert "Table Data: none" in text

    def test_mock_llm_single_row_table(self):
        from repro.baselines.llm.harness import LLMHarness
        from repro.baselines.llm.mock_llm import MockLLM
        from repro.tables.model import Table

        harness = LLMHarness(MockLLM.named("gpt-3.5"))
        annotation = harness.classify(Table([["age", "total"]]))
        assert len(annotation.row_labels) == 1


class TestFitReport:
    def test_breakdown_sums(self, hashed_pipeline):
        report = hashed_pipeline.fit_report
        assert report is not None
        parts = (
            report.embedding_seconds
            + report.bootstrap_seconds
            + report.contrastive_seconds
            + report.centroid_seconds
        )
        assert report.total_seconds == pytest.approx(parts)
        assert report.n_tables > 0


class TestCentroidSetBasics:
    def test_describe_without_stats(self):
        from repro.core.angles import AngleRange
        from repro.core.centroids import CentroidSet

        centroids = CentroidSet(
            mde=AngleRange(10, 20),
            de=AngleRange(0, 30),
            mde_de=AngleRange(40, 90),
            meta_ref=np.zeros(4),
            data_ref=np.zeros(4),
        )
        text = centroids.describe()
        assert "C_MDE     = 10 to 20" in text
        assert centroids.stats_for_level(1) is None


class TestWord2VecWindowing:
    def test_window_respects_bounds(self):
        from repro.embeddings.word2vec import Word2Vec, Word2VecConfig

        model = Word2Vec(Word2VecConfig(dim=4, window=2, seed=0))
        rng = np.random.default_rng(0)
        centers, contexts = model._pairs([1, 2, 3], rng)
        assert centers.size == contexts.size
        assert set(centers.tolist()) <= {1, 2, 3}
        # no self pairs
        assert all(c != o for c, o in zip(centers, contexts))

    def test_pairs_empty_for_singleton(self):
        from repro.embeddings.word2vec import Word2Vec

        model = Word2Vec()
        rng = np.random.default_rng(0)
        centers, _ = model._pairs([5], rng)
        assert centers.size == 0


class TestHybridCounters:
    def test_counts_accumulate(self, hashed_pipeline, ckg_eval):
        from repro.core.pipeline import HybridClassifier

        hybrid = HybridClassifier(hashed_pipeline)
        for item in ckg_eval[:10]:
            hybrid.classify(item.table)
        assert hybrid.fast_path_count + hybrid.full_path_count == 10
