"""Cross-module property tests and failure injection.

These exercise the *system-level* invariants: whatever table comes in,
the pipeline emits a well-formed annotation; whatever corrupt markup
the bootstrap sees, it never crashes; determinism holds end to end.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bootstrap import bootstrap_from_html
from repro.corpus.generator import GeneratorConfig, GSTGenerator
from repro.corpus.vocabularies import get_domain
from repro.tables.labels import LevelKind
from repro.tables.model import Table

# Hypothesis strategies -------------------------------------------------------

cells = st.one_of(
    st.text(
        alphabet="abcdefghij 0123456789.,%()-",
        max_size=14,
    ),
    st.just(""),
    st.integers(min_value=0, max_value=10**6).map(str),
)
grids = st.lists(
    st.lists(cells, min_size=1, max_size=6), min_size=1, max_size=8
)


class TestPipelineInvariants:
    """Whatever grid goes in, a well-formed annotation comes out."""

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(grids)
    def test_annotation_always_well_formed(self, hashed_pipeline, raw):
        table = Table(raw)
        annotation = hashed_pipeline.classify(table)
        assert len(annotation.row_labels) == table.n_rows
        assert len(annotation.col_labels) == table.n_cols
        # depth accounting consistent: leading HMD rows carry 1..d
        for depth0, i in enumerate(range(annotation.hmd_depth)):
            assert annotation.row_labels[i].level == depth0 + 1
        for depth0, j in enumerate(range(annotation.vmd_depth)):
            assert annotation.col_labels[j].level == depth0 + 1

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(grids)
    def test_classification_deterministic(self, hashed_pipeline, raw):
        table = Table(raw)
        first = hashed_pipeline.classify(table)
        second = hashed_pipeline.classify(table)
        assert first.row_labels == second.row_labels
        assert first.col_labels == second.col_labels

    def test_depth_caps_respected(self, hashed_pipeline):
        config = hashed_pipeline.classifier.config
        generator = GSTGenerator(
            GeneratorConfig(domain=get_domain("biomedical")), seed=99
        )
        for item in generator.generate_with_depths(
            5, hmd_depth=5, vmd_depth=3
        ):
            annotation = hashed_pipeline.classify(item.table)
            assert annotation.hmd_depth <= config.max_hmd_depth
            assert annotation.vmd_depth <= config.max_vmd_depth


class TestBootstrapRobustness:
    """Corrupt markup must degrade, never crash."""

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_crashes(self, markup):
        labels = bootstrap_from_html(markup)
        assert len(labels.row_kinds) == labels.table.n_rows

    @pytest.mark.parametrize(
        "markup",
        [
            "<table>",
            "<table><tr>",
            "<table><thead><tr><th>a</thead></table>",
            "<table><tr><td colspan='-3'>x</td></tr></table>",
            "<tr><td>orphan</td></tr>",
            "<table><tbody><tr></tr><tr></tr></tbody></table>",
            "<!-- comment only -->",
        ],
    )
    def test_malformed_fragments(self, markup):
        labels = bootstrap_from_html(markup)
        assert all(
            kind in (LevelKind.HMD, LevelKind.VMD, LevelKind.DATA, None)
            for kind in labels.row_kinds + labels.col_kinds
        )


class TestCorpusInvariantsAcrossProfiles:
    @pytest.mark.parametrize(
        "dataset", ["cord19", "ckg", "cius", "saus", "wdc", "pubtables"]
    )
    def test_generated_tables_are_valid(self, dataset):
        from repro.corpus.registry import build_corpus
        from repro.tables.validate import is_valid_table

        corpus = build_corpus(dataset, n_tables=15, seed=5)
        for item in corpus:
            assert is_valid_table(item.table), item.table.name
            # ground truth depths within the profile's envelope
            from repro.corpus.profiles import get_profile

            profile = get_profile(dataset)
            assert item.hmd_depth <= max(
                profile.config.hmd_depth_probs
            ), item.table.name
            assert item.vmd_depth <= max(profile.config.vmd_depth_probs)

    @pytest.mark.parametrize("dataset", ["ckg", "wdc"])
    def test_markup_parses_back_to_grid(self, dataset):
        """Every emitted HTML (noise and all) parses to the exact grid."""
        from repro.corpus.registry import build_corpus
        from repro.tables.html import parse_html_table

        corpus = build_corpus(dataset, n_tables=25, seed=9)
        for item in corpus:
            if item.html is None:
                continue
            parsed = parse_html_table(item.html)
            assert parsed.to_table().rows == item.table.rows, item.table.name


class TestPathologicalTables:
    def test_single_cell(self, hashed_pipeline):
        annotation = hashed_pipeline.classify(Table([["only"]]))
        assert len(annotation.row_labels) == 1

    def test_wide_blank_table(self, hashed_pipeline):
        table = Table([[""] * 30, [""] * 30])
        annotation = hashed_pipeline.classify(table)
        assert len(annotation.col_labels) == 30

    def test_tall_numeric_table(self, hashed_pipeline):
        rows = [[str(i), str(i * 2)] for i in range(60)]
        annotation = hashed_pipeline.classify(Table(rows))
        assert annotation.hmd_depth == 0

    def test_unicode_content(self, hashed_pipeline):
        table = Table(
            [["崎", "ß", "émigré"], ["1", "2", "3"], ["4", "5", "6"]]
        )
        annotation = hashed_pipeline.classify(table)
        assert len(annotation.row_labels) == 3

    def test_extremely_long_cells(self, hashed_pipeline):
        table = Table([["x " * 500, "y"], ["1", "2"]])
        annotation = hashed_pipeline.classify(table)
        assert len(annotation.row_labels) == 2
