"""SAUS/CIUS scenario: bootstrapping without any HTML markup.

Sec. III-B: "In some datasets such partial HTML tag markup may not be
available (e.g., in SAUS and CIUS).  In that case, we used the first
row/column instead to calculate the metadata centroids."  This example
fits the pipeline on the SAUS stand-in (government statistical tables,
no markup at all) using the first-level fallback, and shows that deep
metadata levels are still recovered even though the bootstrap never saw
a single depth-2 label.

Run:  python examples/no_markup_bootstrap.py
"""

from repro import MetadataPipeline, PipelineConfig
from repro.core.metrics import evaluate_corpus
from repro.corpus import build_split
from repro.embeddings import Word2VecConfig


def main() -> None:
    # Mirror the committed experiment configuration (seed and sizes):
    # markup-free deep-VMD recovery is the method's hardest case and is
    # noticeably seed-sensitive — see EXPERIMENTS.md for the discussion.
    train, evaluation = build_split("saus", n_train=160, n_eval=60, seed=1)
    assert all(item.html is None for item in train), "SAUS has no markup"

    # Same settings as the committed experiments (see
    # repro.experiments.runner.pipeline_config_for): markup-free corpora
    # are sensitive to the embedding dimension — their centroids rest on
    # cross-table statistics, which stabilize at lower dimensionality.
    config = PipelineConfig(
        embedding="word2vec",
        word2vec=Word2VecConfig(dim=32, epochs=2, seed=4),
        bootstrap="first_level",  # the paper's SAUS/CIUS fallback
    )
    pipeline = MetadataPipeline(config).fit(train)

    assert pipeline.row_centroids is not None
    print("centroids estimated from first-row/column bootstrap only:")
    print(pipeline.row_centroids.describe())

    result = evaluate_corpus(evaluation, pipeline.classify)
    print("\nper-level accuracy on held-out SAUS tables:")
    for level, accuracy in sorted(result.hmd_accuracy.items()):
        print(f"  HMD level {level}: {100 * accuracy:5.1f}%")
    for level, accuracy in sorted(result.vmd_accuracy.items()):
        print(f"  VMD level {level}: {100 * accuracy:5.1f}%")
    print(f"\nbinary row accuracy (Eq. 9): "
          f"{100 * result.row_binary_accuracy:.1f}%")
    print(
        "note: levels >= 2 were never labeled during bootstrapping — "
        "they are recovered purely from the angle structure."
    )


if __name__ == "__main__":
    main()
