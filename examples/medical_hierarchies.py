"""Medical tables: recover hierarchical VMD and use it downstream.

The paper's introduction motivates metadata classification with a
semantics-loss story: in Fig. 1(a), row 10's "Stony Brook" loses the
fact that it belongs to "State University of New York" in "New York"
unless the hierarchical vertical metadata is recognized.  This example
classifies a deep medical table, then uses the detected VMD depth to
reconstruct the full hierarchy path of every data row — the downstream
capability the classification enables.

Run:  python examples/medical_hierarchies.py
"""

from repro import MetadataPipeline, PipelineConfig
from repro.corpus import build_level_stratified, build_split
from repro.embeddings import Word2VecConfig
from repro.tables.transform import hierarchy_paths


def main() -> None:
    train, _ = build_split("ckg", n_train=120, n_eval=1, seed=3)
    pipeline = MetadataPipeline(
        PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=48, epochs=2, seed=2),
        )
    ).fit(train)

    # A table with 2 header rows and a 3-level VMD hierarchy.
    sample = build_level_stratified(
        "ckg", hmd_depth=2, vmd_depth=3, n_tables=1, seed=50
    )[0]
    table = sample.table
    print(table.to_text(max_width=13))

    annotation = pipeline.classify(table)
    print(f"\ndetected: {annotation.hmd_depth} HMD levels, "
          f"{annotation.vmd_depth} VMD levels "
          f"(truth: {sample.hmd_depth}/{sample.vmd_depth})")

    # Downstream use: with the VMD depth known, blank continuation cells
    # can be forward-filled and every data row gets its full context.
    paths = hierarchy_paths(
        table, annotation.vmd_depth, skip_rows=annotation.hmd_depth
    )
    print("\nhierarchy path per data row (level 1 -> deepest):")
    for i, path in enumerate(paths):
        row_values = table.row(annotation.hmd_depth + i)[annotation.vmd_depth :]
        print(f"  {' > '.join(p or '(blank)' for p in path):70s} | "
              f"{', '.join(row_values[:2])}")

    # Without the classification, a naive reader would treat the sparse
    # VMD cells as data and lose the nesting: count how many rows would
    # appear context-free.
    orphaned = sum(1 for path in paths if any(not p for p in path))
    raw_blanks = sum(
        1
        for i in range(annotation.hmd_depth, table.n_rows)
        if any(not c for c in table.row(i)[: annotation.vmd_depth])
    )
    print(f"\nrows with blank VMD cells in the raw grid: {raw_blanks}")
    print(f"rows still missing context after forward-fill: {orphaned}")


if __name__ == "__main__":
    main()
