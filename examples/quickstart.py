"""Quickstart: fit the pipeline on a corpus, classify a new table.

Run:  python examples/quickstart.py
"""

from repro import MetadataPipeline, PipelineConfig
from repro.corpus import build_split
from repro.embeddings import Word2VecConfig


def main() -> None:
    # 1. A corpus of generally structured tables.  `build_split` gives a
    #    deterministic train/eval split of the CKG stand-in dataset —
    #    medical tables with hierarchical headers up to 5 levels deep.
    train, evaluation = build_split("ckg", n_train=120, n_eval=5, seed=7)
    print(f"training on {len(train)} tables")

    # 2. Fit: trains Word2Vec term embeddings on the corpus, bootstraps
    #    weak labels from the (noisy) HTML markup, refines the level
    #    space contrastively, and estimates the centroid angle ranges.
    #    No ground-truth labels are read — the pipeline is unsupervised.
    config = PipelineConfig(
        embedding="word2vec",
        word2vec=Word2VecConfig(dim=48, epochs=2, seed=1),
    )
    pipeline = MetadataPipeline(config).fit(train)
    assert pipeline.row_centroids is not None
    print("\nlearned centroid ranges (rows):")
    print(pipeline.row_centroids.describe())

    # 3. Classify a table the pipeline has never seen.
    sample = evaluation[0]
    result = pipeline.classify_result(sample.table)
    print("\ntable:")
    print(sample.table.to_text(max_width=14))
    print(f"\npredicted HMD depth: {result.hmd_depth}"
          f" (truth: {sample.hmd_depth})")
    print(f"predicted VMD depth: {result.vmd_depth}"
          f" (truth: {sample.vmd_depth})")
    print("\nper-row decisions:")
    for evidence in result.row_evidence:
        delta = (
            f"Δ={evidence.angle_to_prev:5.1f}°"
            if evidence.angle_to_prev is not None
            else "Δ=  --- "
        )
        print(f"  row {evidence.index}: {str(evidence.label):5s} {delta}  {evidence.rule}")


if __name__ == "__main__":
    main()
