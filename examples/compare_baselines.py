"""Head-to-head: our pipeline vs Pytheas, Table Transformer, RF, LLMs.

A miniature Table V + Table VI on the CKG stand-in: every method
classifies the same evaluation tables and is scored with the same
per-level accuracy metric.

Run:  python examples/compare_baselines.py
"""

from repro import MetadataPipeline, PipelineConfig
from repro.baselines import (
    HeaderForestClassifier,
    LLMHarness,
    MockLLM,
    PytheasClassifier,
    RAGStore,
    TableTransformerBaseline,
)
from repro.core.metrics import table_level_accuracy
from repro.corpus import build_level_stratified, build_split
from repro.embeddings import Word2VecConfig
from repro.experiments.reporting import ascii_table
from repro.tables.labels import LevelKind


def main() -> None:
    train, evaluation = build_split("ckg", n_train=120, n_eval=50, seed=9)
    # Add stratified deep tables so every level has enough samples.
    for depth in (3, 4, 5):
        evaluation += build_level_stratified(
            "ckg", hmd_depth=depth, vmd_depth=2, n_tables=15, seed=depth
        )

    ours = MetadataPipeline(
        PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=48, epochs=2, seed=6),
        )
    ).fit(train)

    methods = {
        "ours": ours.classify,
        "pytheas": PytheasClassifier().fit(train).classify,
        "table-transformer": TableTransformerBaseline().classify,
        "random-forest": HeaderForestClassifier().fit(train).classify,
        "gpt-3.5 (sim)": LLMHarness(MockLLM.named("gpt-3.5")).classify,
        "gpt-4 (sim)": LLMHarness(MockLLM.named("gpt-4")).classify,
        "rag+gpt-4 (sim)": LLMHarness(
            MockLLM.named("gpt-4"), rag=RAGStore(evaluation)
        ).classify,
    }

    rows = []
    for name, classify in methods.items():
        pairs = [(item.annotation, classify(item.table)) for item in evaluation]
        cells: list[object] = [name]
        for level in range(1, 6):
            accuracy = table_level_accuracy(
                pairs, kind=LevelKind.HMD, level=level
            )
            cells.append(None if accuracy is None else round(100 * accuracy, 1))
        for level in range(1, 4):
            accuracy = table_level_accuracy(
                pairs, kind=LevelKind.VMD, level=level
            )
            cells.append(None if accuracy is None else round(100 * accuracy, 1))
        rows.append(cells)

    print(
        ascii_table(
            ["Method", "HMD1", "HMD2", "HMD3", "HMD4", "HMD5",
             "VMD1", "VMD2", "VMD3"],
            rows,
            title="Per-level accuracy (%) on CKG "
            "(note: Pytheas/TT/RF do not separate levels — their deep-"
            "level cells score the header *kind* only)",
        )
    )


if __name__ == "__main__":
    main()
