"""Structural search: classify once, query by semantic coordinates.

The paper's motivation: "Structural search in data lakes could make
table search and discovery more precise and accurate compared to just
keyword-search ... that usually blindly treats all table sections as
data."  This example fits the pipeline, saves it, reloads it (the
production fit-once/serve-many cycle), classifies a small data lake of
tables, and answers a structural query keyword search cannot: *find
every value whose attribute mentions "mortality" inside a "Severe
cases" context* — matching by where a term sits in the hierarchy, not
just that it appears somewhere.

Run:  python examples/structural_search.py
"""

import tempfile
from pathlib import Path

from repro import MetadataPipeline, PipelineConfig
from repro.core.persistence import load_pipeline, save_pipeline
from repro.corpus import build_split
from repro.embeddings import Word2VecConfig
from repro.tables import StructuredTable


def main() -> None:
    train, lake = build_split("ckg", n_train=120, n_eval=30, seed=11)

    pipeline = MetadataPipeline(
        PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=48, epochs=2, seed=8),
        )
    ).fit(train)

    # Fit once, serve many: round-trip through the .npz archive.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_pipeline(pipeline, Path(tmp) / "ckg-pipeline")
        print(f"saved fitted pipeline ({path.stat().st_size / 1024:.0f} KiB)")
        served = load_pipeline(path)

    # Classify the lake and build the structural index.
    structured = [
        StructuredTable(item.table, served.classify(item.table))
        for item in lake
    ]
    total_cells = sum(s.n_data_cells for s in structured)
    print(f"indexed {len(structured)} tables, {total_cells} data cells")

    # Structural query 1: every value whose *attribute* (HMD path)
    # mentions 'mortality' — keyword search cannot tell an attribute
    # occurrence from a data occurrence.
    print("\nstructural query: attribute~'mortality'")
    attribute_hits = [
        (item, record)
        for item, s in zip(lake, structured)
        for record in s.lookup(attribute="mortality")
    ]
    for item, record in attribute_hits[:6]:
        context = " > ".join(p for p in record.vmd_path if p) or "(top level)"
        print(
            f"  {item.table.name}: {record.value!r:>14} "
            f"attribute={record.attribute!r} context={context}"
        )
    print(f"  ... {len(attribute_hits)} values under a 'mortality' attribute")

    # Structural query 2: narrow by hierarchy context, taken from the
    # first hit — "the same attribute, but only inside this VMD branch".
    branch = next(
        (p for _, r in attribute_hits for p in r.vmd_path if p), None
    )
    if branch is not None:
        narrowed = [
            (item, record)
            for item, s in zip(lake, structured)
            for record in s.lookup(attribute="mortality", context=branch)
        ]
        print(
            f"\nnarrowed to context~'{branch}': "
            f"{len(narrowed)} of {len(attribute_hits)} values remain"
        )

    # Contrast with blind keyword search over all cells.
    keyword_hits = sum(
        1
        for item in lake
        for _, _, cell in item.table.iter_cells()
        if "mortality" in cell.lower()
    )
    print(
        f"\nblind keyword search for 'mortality' touches {keyword_hits} "
        "cells — all of them header cells, none of them the values a "
        "data scientist actually wants."
    )


if __name__ == "__main__":
    main()
