"""Regenerate every table and figure of the paper at the PAPER scale.

Writes the rendered artifacts to stdout and (optionally) to a file:

    python examples/regenerate_paper_artifacts.py [output.txt] [--smoke]

This is the script that produced the numbers committed in
EXPERIMENTS.md.  The full PAPER-scale run takes several minutes on one
core (it fits six pipelines and evaluates every method on every
dataset); pass --smoke for a fast reduced-scale pass.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    PAPER,
    SMOKE,
    run_significance,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.experiments.ablations import (
    run_ablation_aggregation,
    run_ablation_bootstrap,
    run_ablation_contrastive,
    run_ablation_embedding,
    run_ablation_hybrid,
    run_ablation_markup_noise,
    run_ablation_self_training,
    run_ablation_similarity,
)


def main() -> None:
    args = [a for a in sys.argv[1:]]
    scale = SMOKE if "--smoke" in args else PAPER
    output_paths = [a for a in args if not a.startswith("--")]

    sections: list[str] = [
        f"# Paper artifacts regenerated at scale '{scale.name}'",
        f"(train={scale.n_train} tables/dataset before multipliers, "
        f"eval={scale.n_eval}+strata, embedding dim={scale.embedding_dim})",
    ]
    steps = [
        ("Table I", lambda: run_table1(scale).render()),
        ("Table II", lambda: run_table2(scale).render()),
        ("Table III", lambda: run_table3(scale).render()),
        ("Table IV", lambda: run_table4(scale).render()),
        ("Table V", lambda: run_table5(scale, include_rf=True).render()),
        ("Table VI", lambda: run_table6(scale).render()),
        ("Figure 5", lambda: run_figure5(scale).render()),
        ("Figure 6", lambda: run_figure6(scale).render()),
        ("Figure 7", lambda: run_figure7(scale).render()),
        ("Runtime (Sec. IV-G)", lambda: run_runtime(scale).render()),
        ("Significance tests", lambda: run_significance(scale).render()),
        ("Ablation: similarity", lambda: run_ablation_similarity(scale).render()),
        ("Ablation: contrastive", lambda: run_ablation_contrastive(scale).render()),
        ("Ablation: bootstrap", lambda: run_ablation_bootstrap(scale).render()),
        ("Ablation: embedding", lambda: run_ablation_embedding(scale).render()),
        ("Ablation: aggregation", lambda: run_ablation_aggregation(scale).render()),
        ("Ablation: hybrid", lambda: run_ablation_hybrid(scale).render()),
        (
            "Ablation: self-training",
            lambda: run_ablation_self_training(scale).render(),
        ),
        (
            "Ablation: markup noise",
            lambda: run_ablation_markup_noise(scale).render(),
        ),
    ]
    for name, step in steps:
        start = time.perf_counter()
        text = step()
        elapsed = time.perf_counter() - start
        print(f"[{name}] done in {elapsed:.1f}s", file=sys.stderr)
        sections.append(text)

    document = "\n\n".join(sections) + "\n"
    print(document)
    for path in output_paths:
        with open(path, "w") as handle:
            handle.write(document)
        print(f"wrote {path}", file=sys.stderr)


if __name__ == "__main__":
    main()
