"""Diagnose the angle geometry a fitted pipeline relies on.

The classifier works only if the embedding space puts metadata-data
level pairs at larger angles than same-kind pairs.  This example fits
the pipeline on two corpora — one easy (CKG, rich markup, deep tables)
and one hard (a deliberately tiny corpus) — and renders the angle
spectra side by side, showing what "enough training data" looks like
in the geometry itself.

Run:  python examples/diagnose_geometry.py
"""

from repro import MetadataPipeline, PipelineConfig
from repro.core.bootstrap import bootstrap_corpus
from repro.core.diagnostics import (
    angle_spectrum,
    render_spectrum,
    separability_report,
)
from repro.corpus import build_split
from repro.embeddings import Word2VecConfig


def fit_and_diagnose(n_train: int) -> None:
    train, _ = build_split("ckg", n_train=n_train, n_eval=1, seed=13)
    pipeline = MetadataPipeline(
        PipelineConfig(
            embedding="word2vec",
            word2vec=Word2VecConfig(dim=32, epochs=2, seed=5),
        )
    ).fit(train)
    labeled = bootstrap_corpus(train[:60])
    spectrum = angle_spectrum(pipeline.embedder, labeled, axis="rows")
    report = separability_report(spectrum)
    print(f"=== trained on {n_train} tables: {report.verdict} "
          f"(AUC {report.separation_auc}) ===")
    print(render_spectrum(spectrum))
    print()


def main() -> None:
    fit_and_diagnose(15)   # starved geometry
    fit_and_diagnose(150)  # healthier: the AUC and the verdict improve
    print(
        "note: the AUC is a coarse one-number triage — the classifier "
        "additionally uses the purified references and the per-kind "
        "centroid ranges, so usable geometry already supports >90% "
        "level-1 accuracy."
    )


if __name__ == "__main__":
    main()
