"""The LLM labeling loop of Sec. IV-H/I, end to end.

Shows the actual prompt/response round trip: the system message, the
structured user prompt with the CSV table, the (simulated) model's
response text, the parsed labels — and how RAG-retrieved HTML changes
the outcome on a numeric-header table the plain model gets wrong.

Run:  python examples/llm_labeling.py
"""

from repro.baselines.llm import (
    LLMHarness,
    MockLLM,
    RAGStore,
    SYSTEM_MESSAGE,
    build_user_prompt,
)
from repro.corpus import build_corpus


def main() -> None:
    corpus = build_corpus("ckg", n_tables=60, seed=21)
    # Pick a table with deep headers and published HTML for retrieval.
    sample = next(
        item for item in corpus if item.hmd_depth >= 3 and item.html
    )
    table = sample.table

    print("=== system message ===")
    print(SYSTEM_MESSAGE)
    prompt = build_user_prompt(table)
    print("\n=== user prompt (truncated) ===")
    print(prompt[:600] + ("..." if len(prompt) > 600 else ""))

    llm = MockLLM.named("gpt-4")
    print("\n=== gpt-4 (simulated) response ===")
    print(llm.complete(SYSTEM_MESSAGE, prompt))

    plain = LLMHarness(llm)
    rag = LLMHarness(llm, rag=RAGStore(corpus))

    plain_annotation = plain.classify(table)
    rag_annotation = rag.classify(table)

    print(f"\ntruth:       HMD depth {sample.hmd_depth}, "
          f"VMD depth {sample.vmd_depth}")
    print(f"gpt-4:       HMD depth {plain_annotation.hmd_depth}, "
          f"VMD depth {plain_annotation.vmd_depth}")
    print(f"rag+gpt-4:   HMD depth {rag_annotation.hmd_depth}, "
          f"VMD depth {rag_annotation.vmd_depth}")
    print(
        "\nRAG feeds the published HTML (with its <thead>/<th> tags) "
        "back into the prompt, letting the model correct missed deep "
        "header rows — the mechanism of Sec. IV-I."
    )


if __name__ == "__main__":
    main()
