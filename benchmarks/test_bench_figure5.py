"""Bench: regenerate Fig. 5 (annotated classified sample table)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_figure5
from repro.tables.labels import LevelKind


def test_bench_figure5(benchmark, warm_pipelines):
    figure = run_once(benchmark, run_figure5, SMOKE)
    result = figure.result

    # The sample is generated with HMD depth 3; the pipeline should
    # recover a deep header block (allowing one level of slack).
    assert result.hmd_depth >= 2

    # The evidence must cover every row and expose the paper's deltas.
    assert len(result.row_evidence) == result.table.n_rows
    assert result.row_evidence[0].angle_to_prev is None
    for evidence in result.row_evidence[1:]:
        assert evidence.angle_to_prev is not None
        assert 0.0 <= evidence.angle_to_prev <= 180.0

    # The annotated rendering includes the centroid ranges.
    text = figure.render()
    assert "C_MDE" in text and "C_DE" in text and "C_MDE-DE" in text

    # Fig. 5's key visual: the metadata->data boundary exists, and the
    # header block is contiguous from the top (no DATA row sandwiched
    # between HMD rows).
    kinds = [e.label.kind for e in result.row_evidence]
    first_data = kinds.index(LevelKind.DATA)
    assert all(k is LevelKind.HMD for k in kinds[:first_data])
    assert LevelKind.HMD not in kinds[first_data:]

    print()
    print(text)
