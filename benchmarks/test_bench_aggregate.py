"""Bench: the vectorized aggregation plane vs the scalar seed path.

The scalar path (``vectorized=False``) tokenizes every cell twice and
embeds every token occurrence with a per-token Python call; the
vectorized plane tokenizes once, resolves unique tokens in one batched
lookup, and scatters the aggregates with two count x vector matmuls.
Same centroids, same projection, byte-identical annotations — the only
difference is how the level vectors are produced.

Two claims are asserted:

* classify throughput on 100+ mixed tables improves by >= 3x;
* one embedder shared by 8 serving threads with a deliberately tiny
  (always-evicting) cache returns exactly the single-thread annotations
  — no corruption, no unbounded growth.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest

from repro.core.classifier import MetadataClassifier
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.registry import build_corpus, build_split
from repro.corpus.vocabularies import get_domain

TARGET_SPEEDUP = 3.0
N_THREADS = 8


@pytest.fixture(scope="module")
def bench_pipeline():
    """A cheap hashed-backend pipeline; fitting is not what we measure."""
    fields = get_domain("biomedical").field_map()
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=fields,
        n_pairs=200,
        use_contrastive=False,
    )
    train, _ = build_split("ckg", n_train=60, n_eval=0, seed=7)
    return MetadataPipeline(config).fit(train)


@pytest.fixture(scope="module")
def mixed_tables():
    """100+ tables across four dataset profiles (sizes and shapes vary)."""
    tables = []
    for name in ("ckg", "saus", "cord19", "wdc"):
        tables.extend(
            item.table for item in build_corpus(name, n_tables=30, seed=13)
        )
    assert len(tables) >= 100
    return tables


def _variant(pipeline, *, vectorized: bool) -> MetadataClassifier:
    clf = pipeline.classifier
    return MetadataClassifier(
        clf.embedder,
        clf.row_centroids,
        clf.col_centroids,
        projection=clf.projection,
        config=replace(clf.config, vectorized=vectorized),
    )


def _best_of(classifier, tables, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for table in tables:
            classifier.classify(table)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_vectorized_speedup(bench_pipeline, mixed_tables):
    fast = _variant(bench_pipeline, vectorized=True)
    scalar = _variant(bench_pipeline, vectorized=False)

    # Warm-up doubles as the equivalence gate: the speedup claim is
    # meaningless unless the annotations are identical.
    for table in mixed_tables:
        assert fast.classify(table) == scalar.classify(table)

    t_scalar = _best_of(scalar, mixed_tables)
    t_fast = _best_of(fast, mixed_tables)
    speedup = t_scalar / t_fast

    n = len(mixed_tables)
    print(
        f"\n{n} tables: scalar {t_scalar:.3f}s ({n / t_scalar:.0f}/s) vs "
        f"vectorized {t_fast:.3f}s ({n / t_fast:.0f}/s) — "
        f"{speedup:.2f}x speedup"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized plane {speedup:.2f}x, needs >= {TARGET_SPEEDUP}x"
    )


def test_bench_concurrent_serve_no_cache_corruption(
    bench_pipeline, mixed_tables
):
    """8 threads, one shared classifier, an embedder cache far smaller
    than the working set (every lookup races with evictions)."""
    clf = bench_pipeline.classifier
    from repro.embeddings.lookup import TermEmbedder

    embedder = TermEmbedder(clf.embedder.model, cache_size=64)
    shared = MetadataClassifier(
        embedder,
        clf.row_centroids,
        clf.col_centroids,
        projection=clf.projection,
        config=clf.config,
    )
    expected = [bench_pipeline.classify(t) for t in mixed_tables]

    results = [[None] * len(mixed_tables) for _ in range(N_THREADS)]
    barrier = threading.Barrier(N_THREADS)

    def worker(slot: int) -> None:
        barrier.wait()
        # Each thread walks the corpus from a different offset so cache
        # contention (and eviction) is constant, not phase-locked.
        n = len(mixed_tables)
        for step in range(n):
            index = (step + slot * (n // N_THREADS)) % n
            results[slot][index] = shared.classify(mixed_tables[index])

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    for slot in range(N_THREADS):
        for index, annotation in enumerate(results[slot]):
            assert annotation == expected[index], (
                f"thread {slot} diverged on table {index}"
            )
    info = embedder.cache_info()
    assert info.size <= 64
    total = N_THREADS * len(mixed_tables)
    print(
        f"\n{total} classifications across {N_THREADS} threads in "
        f"{elapsed:.2f}s ({total / elapsed:.0f}/s), cache "
        f"{info.hits} hits / {info.misses} misses, size {info.size}"
    )


#: Disabled tracing may cost at most this fraction of classify time.
NOOP_OVERHEAD_BUDGET = 0.02


def test_bench_noop_tracing_overhead(bench_pipeline, mixed_tables):
    """The instrumentation baked into the hot path must be ~free when
    tracing is disabled (the process default).

    Measured as a proxy that is robust to machine noise: the per-call
    cost of a disabled ``obs.span`` times the spans a classify emits
    must stay under ``NOOP_OVERHEAD_BUDGET`` of the measured per-table
    classify time.  A direct before/after timing of classify itself
    cannot resolve a <2% delta above run-to-run variance.
    """
    from repro import obs

    assert not obs.get_tracer().enabled

    fast = _variant(bench_pipeline, vectorized=True)
    for table in mixed_tables:  # warm caches
        fast.classify(table)
    per_table = _best_of(fast, mixed_tables) / len(mixed_tables)

    # Count the spans one classify emits (tracing briefly enabled).
    with obs.tracing() as tracer:
        for table in mixed_tables[:10]:
            fast.classify(table)
    spans_per_classify = len(tracer.spans()) / 10

    # Cost of one disabled span call, kwargs included, amortized.
    n_calls = 200_000
    start = time.perf_counter()
    for _ in range(n_calls):
        with obs.span("bench", table="t", rows=1, cols=1):
            pass
    per_span = (time.perf_counter() - start) / n_calls

    overhead = per_span * spans_per_classify / per_table
    print(
        f"\nnoop span: {per_span * 1e9:.0f}ns x {spans_per_classify:.1f} "
        f"spans/classify vs {per_table * 1e6:.0f}us/table -> "
        f"{overhead:.2%} overhead (budget {NOOP_OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < NOOP_OVERHEAD_BUDGET, (
        f"disabled tracing costs {overhead:.2%} of classify time, "
        f"budget is {NOOP_OVERHEAD_BUDGET:.0%}"
    )
