"""Record the repo's performance trajectory (CI `bench` job).

Measures three numbers on the current tree:

* **classify tables/sec** — single-threaded classify throughput of the
  default (vectorized, hashed-backend) pipeline over 120 mixed tables,
  best of three passes;
* **fused tables/sec** — the same 120 tables through
  :meth:`~repro.core.pipeline.MetadataPipeline.classify_corpus` (the
  fused corpus plane of :mod:`repro.core.fused`), best of five passes,
  after asserting its labels are byte-identical to the per-table loop;
  ``fused_speedup`` is the same-run ratio against the per-table number,
  which makes it robust to machine-class noise;
* **serve batch speedup** — the same workload through
  :class:`~repro.serve.httpd.ClassificationService` with concurrent
  clients and a 4-worker micro-batching pool, vs the serial loop
  (~1x on this tiny-table workload, where the GIL binds; tracked so a
  collapse or an improvement both show up in the series);
* **p95 seconds** — the request-latency 95th percentile of the service
  run, straight from :class:`~repro.serve.metrics.ServiceMetrics`;
* **batch procs tables/sec** — the same 120 tables through
  :class:`~repro.parallel.ShardedPool` (``repro batch --procs``) with
  as many worker processes as the machine allows (capped at 4),
  steady-state, worker caches off;
* **model cold-load ms** — best-of-three :func:`load_pipeline` wall
  time for the directory store vs the ``.npz`` archive of the same
  model, the number the zero-copy store exists to shrink;
* **fleet tables/sec** — the same 120 tables through
  :class:`~repro.fleet.FleetRouter` (``repro serve --fleet``) with as
  many worker processes as the machine allows (capped at 4),
  steady-state — the socket hop plus per-worker dispatch overhead on
  top of raw classification;
* **shed rate under overload** — fraction of 200 rapid-fire submits a
  deliberately tiny fleet (1 worker, queue depth 2) rejects with a
  fast 503 instead of queueing unboundedly; tracked so admission
  control stays a fast path and keeps actually shedding;
* **streaming tables/sec** — the same 120 tables through the pipelined
  streaming plane (:func:`repro.connectors.pipelined.run_streaming`,
  ``repro batch``'s default path), best of three; on machines with at
  least 2 usable CPUs the entry also carries ``streaming_speedup``,
  the same-run ratio against the strictly sequential
  parse-then-classify loop;
* **streaming peak RSS MB** — peak traced allocation (tracemalloc)
  while windowed-classifying a 50k-row CSV under a 64-row window
  budget; the bounded-memory claim as a number.

One JSON entry ``{commit, date, classify_tables_per_sec,
fused_tables_per_sec, fused_speedup, serve_batch_speedup, p95_seconds,
batch_procs_tables_per_sec, model_cold_load_ms, fleet_tables_per_sec,
shed_rate_under_overload, streaming_tables_per_sec,
streaming_peak_rss_mb}`` is appended to the trajectory file
(default ``BENCH_trajectory.json``, uploaded as a CI artifact) so the
perf history of the project is a machine-readable series.

The trajectory also carries **quality** numbers (PR 9): pass
``--fuzz-report`` / ``--ablation-report`` with the JSON files that
``repro fuzz --report`` and ``repro ablate --report`` emit and the
entry gains fuzz crash/divergence/flip counts plus the ablation
baseline accuracy and worst-knockout impact.  ``--quality-only`` skips
the perf measurement entirely (the CI ``quality`` job appends its own
entry without re-running the bench).

``--check`` compares classify, fused, and streaming throughput against
the committed ``benchmarks/BENCH_baseline.json`` and exits non-zero on
a regression of more than 20%, when the same-run fused speedup falls
below :data:`FUSED_SPEEDUP_FLOOR`, when the same-run streaming speedup
falls below :data:`STREAMING_SPEEDUP_FLOOR` (only measured on >=2-CPU
machines), or when the windowed streaming peak rises above
:data:`STREAMING_PEAK_RSS_CEILING_MB` — the CI gate.  Quality keys gate
too: any fuzz crash/divergence/flip fails, and ``ablation_hmd1`` below
:data:`REGRESSION_FLOOR` of the baseline fails.  Gates only fire for
keys the entry actually has, so perf-only and quality-only entries
coexist in one series.  ``--write-baseline`` refreshes the
baseline from the current measurement (do this deliberately, on the
machine class CI uses, when a legitimate perf change lands).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"

#: A measurement below this fraction of the baseline fails ``--check``.
REGRESSION_FLOOR = 0.8

#: ``--check`` fails when the fused corpus path is not at least this
#: many times faster than the per-table loop *in the same run*.  The
#: tree measures ~8-10x; 5x is the floor with headroom for noisy CI
#: machines (the ratio cancels machine speed, unlike the absolute
#: throughput gate).
FUSED_SPEEDUP_FLOOR = 5.0

#: ``--check`` fails when the pipelined streaming plane is not at least
#: this many times faster than the sequential parse-then-classify loop
#: in the same run.  The key is only emitted on machines with >=2
#: usable CPUs — on one core there is nothing to overlap — so the gate
#: arms itself exactly where the claim is testable.
STREAMING_SPEEDUP_FLOOR = 1.3

#: ``--check`` fails when the windowed streaming measurement peaks
#: above this many MB of traced allocations.  The full 50k x 8 grid
#: would cost >25 MB; the window path measures ~6 MB.
STREAMING_PEAK_RSS_CEILING_MB = 12.0

N_TABLES_PER_PROFILE = 30
PROFILES = ("ckg", "saus", "cord19", "wdc")
CLASSIFY_REPS = 3
FUSED_REPS = 5
#: Enough closed-loop clients that micro-batches fill on queue pressure
#: instead of stalling on the max_delay deadline.
CLIENT_THREADS = 32
SERVE_WORKERS = 4


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _build_workload():
    from repro.core.pipeline import MetadataPipeline, PipelineConfig
    from repro.corpus.registry import build_corpus, build_split
    from repro.corpus.vocabularies import get_domain

    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=get_domain("biomedical").field_map(),
        n_pairs=200,
        use_contrastive=False,
    )
    train, _ = build_split("ckg", n_train=60, n_eval=0, seed=7)
    pipeline = MetadataPipeline(config).fit(train)
    tables = []
    for name in PROFILES:
        tables.extend(
            item.table
            for item in build_corpus(name, n_tables=N_TABLES_PER_PROFILE, seed=13)
        )
    return pipeline, tables


def measure(verbose: bool = True) -> dict:
    from repro.serve.batching import BatchingConfig
    from repro.serve.httpd import ClassificationService
    from repro.serve.metrics import ServiceMetrics, quantile
    from repro.serve.registry import ModelRegistry

    pipeline, tables = _build_workload()

    # Warm every shared cache (token LRU, tokenize memo) so both the
    # serial and the concurrent measurement see the same steady state.
    for table in tables:
        pipeline.classify(table)

    serial_best = float("inf")
    for _ in range(CLASSIFY_REPS):
        start = time.perf_counter()
        loop_annotations = [pipeline.classify(table) for table in tables]
        serial_best = min(serial_best, time.perf_counter() - start)
    tables_per_sec = len(tables) / serial_best

    # The fused corpus path must be byte-identical before it is timed —
    # a fast wrong answer is not a benchmark.
    fused_annotations = pipeline.classify_corpus(tables)
    if fused_annotations != loop_annotations:
        raise SystemExit(
            "fused classify_corpus labels diverge from the per-table loop"
        )
    fused_best = float("inf")
    for _ in range(FUSED_REPS):
        start = time.perf_counter()
        pipeline.classify_corpus(tables)
        fused_best = min(fused_best, time.perf_counter() - start)
    fused_tables_per_sec = len(tables) / fused_best
    fused_speedup = serial_best / fused_best

    registry = ModelRegistry()
    registry.add("bench", pipeline)
    metrics = ServiceMetrics()
    service = ClassificationService(
        registry,
        batching=BatchingConfig(workers=SERVE_WORKERS),
        cache_capacity=0,  # measure classification, not the result cache
        metrics=metrics,
    )
    try:
        def _one(table) -> None:
            start = time.perf_counter()
            service.classify_table(table, model="bench")
            metrics.observe_request(time.perf_counter() - start)

        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as clients:
            start = time.perf_counter()
            list(clients.map(_one, tables))
            concurrent_elapsed = time.perf_counter() - start
    finally:
        service.close()

    speedup = serial_best / concurrent_elapsed
    latencies = sorted(metrics.latency.snapshot())
    p95 = quantile(latencies, 0.95) if latencies else 0.0

    procs_tables_per_sec, cold_load_ms = _measure_parallel(pipeline, tables)
    fleet_tables_per_sec, shed_rate = _measure_fleet(pipeline, tables)
    streaming_tables_per_sec, streaming_peak_mb, streaming_speedup = (
        _measure_streaming(pipeline, tables)
    )

    entry = {
        "commit": _git_commit(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "classify_tables_per_sec": round(tables_per_sec, 2),
        "fused_tables_per_sec": round(fused_tables_per_sec, 2),
        "fused_speedup": round(fused_speedup, 2),
        "serve_batch_speedup": round(speedup, 3),
        "p95_seconds": round(p95, 6),
        "batch_procs_tables_per_sec": round(procs_tables_per_sec, 2),
        "model_cold_load_ms": cold_load_ms,
        "fleet_tables_per_sec": round(fleet_tables_per_sec, 2),
        "shed_rate_under_overload": round(shed_rate, 3),
        "streaming_tables_per_sec": round(streaming_tables_per_sec, 2),
        "streaming_peak_rss_mb": round(streaming_peak_mb, 2),
    }
    if streaming_speedup is not None:
        entry["streaming_speedup"] = round(streaming_speedup, 2)
    if verbose:
        print(
            f"classify: {tables_per_sec:.1f} tables/sec "
            f"({len(tables)} tables, best of {CLASSIFY_REPS})\n"
            f"fused:    {fused_tables_per_sec:.1f} tables/sec "
            f"({fused_speedup:.2f}x, best of {FUSED_REPS}, "
            f"labels verified)\n"
            f"serve:    {speedup:.2f}x vs serial "
            f"({SERVE_WORKERS} workers, {CLIENT_THREADS} clients), "
            f"p95 {p95 * 1000:.1f}ms\n"
            f"procs:    {procs_tables_per_sec:.1f} tables/sec "
            f"(ShardedPool)\n"
            f"cold load: dir {cold_load_ms['dir']:.1f}ms, "
            f"npz {cold_load_ms['npz']:.1f}ms\n"
            f"fleet:    {fleet_tables_per_sec:.1f} tables/sec, "
            f"shed rate {shed_rate:.0%} under overload\n"
            f"stream:   {streaming_tables_per_sec:.1f} tables/sec"
            + (
                f" ({streaming_speedup:.2f}x vs sequential)"
                if streaming_speedup is not None
                else " (1 CPU, no speedup measured)"
            )
            + f", windowed peak {streaming_peak_mb:.2f} MB",
            file=sys.stderr,
        )
    return entry


def _measure_parallel(pipeline, tables) -> tuple[float, dict]:
    """(ShardedPool tables/sec, {dir,npz} cold-load milliseconds)."""
    from repro.core.persistence import (
        load_pipeline,
        save_pipeline,
        save_pipeline_dir,
    )
    from repro.parallel import ShardedPool, cpu_worker_default
    from repro.tables.csvio import table_to_csv

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        store = save_pipeline_dir(pipeline, root / "model")
        npz = save_pipeline(pipeline, root / "model.npz")

        table_dir = root / "tables"
        table_dir.mkdir()
        paths = []
        for i, table in enumerate(tables):
            path = table_dir / f"t{i:04d}.csv"
            path.write_text(table_to_csv(table))
            paths.append(str(path))

        procs = cpu_worker_default(ceiling=4)
        with ShardedPool(
            {"bench": store}, procs=procs, default="bench", cache_capacity=0
        ) as pool:
            list(pool.map_paths(paths))  # warm worker imports + model pages
            start = time.perf_counter()
            records = list(pool.map_paths(paths))
            elapsed = time.perf_counter() - start
        if any("error" in r for r in records):
            raise SystemExit("procs benchmark saw classification errors")
        procs_tables_per_sec = len(tables) / elapsed

        def _cold_ms(path) -> float:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                load_pipeline(path)
                best = min(best, time.perf_counter() - start)
            return round(best * 1000, 3)

        cold_load_ms = {"dir": _cold_ms(store), "npz": _cold_ms(npz)}
    return procs_tables_per_sec, cold_load_ms


def _measure_fleet(pipeline, tables) -> tuple[float, float]:
    """(fleet tables/sec steady-state, shed rate under overload)."""
    from repro.core.persistence import save_pipeline_dir
    from repro.fleet import FleetConfig, FleetRouter
    from repro.parallel import cpu_worker_default
    from repro.serve.batching import ServiceOverloaded

    with tempfile.TemporaryDirectory() as tmp:
        store = save_pipeline_dir(pipeline, Path(tmp) / "model")

        # Steady-state throughput: ample queues, no shedding.
        config = FleetConfig(
            workers=cpu_worker_default(ceiling=4),
            queue_depth=4 * len(tables),
            deadline=600.0,
            spawn_timeout=120.0,
        )
        with FleetRouter({"bench": store}, config=config) as fleet:
            for future in [
                fleet.submit(("bench", t, None)) for t in tables
            ]:
                future.result(timeout=300)  # warm worker imports + pages
            start = time.perf_counter()
            futures = [fleet.submit(("bench", t, None)) for t in tables]
            for future in futures:
                future.result(timeout=300)
            elapsed = time.perf_counter() - start
        fleet_tables_per_sec = len(tables) / elapsed

        # Overload: a 1-worker, depth-2 fleet flooded with 200 rapid
        # submits — admission control must reject most of them fast.
        config = FleetConfig(
            workers=1, queue_depth=2, deadline=30.0, spawn_timeout=120.0
        )
        attempts = 200
        shed = 0
        accepted = []
        with FleetRouter({"bench": store}, config=config) as fleet:
            for i in range(attempts):
                try:
                    accepted.append(
                        fleet.submit(("bench", tables[i % len(tables)], None))
                    )
                except ServiceOverloaded:
                    shed += 1
            for future in accepted:
                future.result(timeout=300)
    return fleet_tables_per_sec, shed / attempts


def _measure_streaming(pipeline, tables) -> tuple[float, float, float | None]:
    """(streaming tables/sec, windowed peak MB, same-run speedup or None).

    The speedup side only runs (and the key is only emitted) when the
    machine has at least 2 usable CPUs — the pipelined executor cannot
    overlap parse with classify on one core, and a meaningless 1.0x
    would trip the gate on every laptop container.
    """
    import os
    import tracemalloc

    from repro.connectors.pipelined import run_streaming
    from repro.connectors.sources import build_sources
    from repro.connectors.window import (
        CsvRowStream,
        WindowConfig,
        classify_windowed,
    )
    from repro.serve.bulk import classify_paths
    from repro.tables.csvio import table_to_csv

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        table_dir = root / "tables"
        table_dir.mkdir()
        paths = []
        for i, table in enumerate(tables):
            path = table_dir / f"t{i:04d}.csv"
            path.write_text(table_to_csv(table))
            paths.append(str(path))

        def _stream_pass() -> float:
            start = time.perf_counter()
            records = run_streaming(
                pipeline, build_sources(paths), parse_workers=4
            )
            elapsed = time.perf_counter() - start
            if len(records) != len(paths):
                raise SystemExit("streaming benchmark lost records")
            return elapsed

        _stream_pass()  # warm imports and token caches
        stream_best = min(_stream_pass() for _ in range(3))
        streaming_tables_per_sec = len(tables) / stream_best

        speedup = None
        if len(os.sched_getaffinity(0)) >= 2:
            sequential_best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                classify_paths(pipeline, paths, workers=1)
                sequential_best = min(
                    sequential_best, time.perf_counter() - start
                )
            speedup = sequential_best / stream_best

        # Bounded-memory windowed classify: 50k rows through a 64-row
        # window budget, peak traced allocation as the claim's number.
        big = root / "big.csv"
        with big.open("w") as f:
            f.write(",".join(f"col{c}" for c in range(8)) + "\n")
            for r in range(49_999):
                f.write(",".join(f"value-{r}-{c}" for c in range(8)) + "\n")
        config = WindowConfig.from_budget(64)
        classify_windowed(pipeline, CsvRowStream(big), config)  # warm
        tracemalloc.start()
        try:
            classify_windowed(pipeline, CsvRowStream(big), config)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return streaming_tables_per_sec, peak / (1024 * 1024), speedup


def quality_entry(
    fuzz_report: Path | None, ablation_report: Path | None
) -> dict:
    """Fold quality-harness report files into trajectory keys.

    Reads the JSON that ``repro fuzz --report`` and ``repro ablate
    --report`` wrote; either side may be absent.  Malformed reports are
    a hard error — a quality entry silently missing its counts would
    neuter the gate.
    """
    entry: dict = {}
    if fuzz_report is not None:
        payload = json.loads(fuzz_report.read_text())
        if payload.get("kind") != "fuzz-report":
            raise SystemExit(f"{fuzz_report} is not a fuzz report")
        counts = payload["counts"]
        entry["fuzz_cases"] = sum(counts.values())
        entry["fuzz_crashes"] = counts["crash"]
        entry["fuzz_divergences"] = counts["divergence"]
        entry["fuzz_flips"] = counts["flip"]
    if ablation_report is not None:
        payload = json.loads(ablation_report.read_text())
        if payload.get("kind") != "ablation-report":
            raise SystemExit(f"{ablation_report} is not an ablation report")
        summary = payload["summary"]
        if summary["baseline_hmd1"] is None:
            raise SystemExit(f"{ablation_report} has no baseline accuracy")
        entry["ablation_hmd1"] = round(summary["baseline_hmd1"], 4)
        entry["ablation_worst_component"] = summary["worst_component"]
        entry["ablation_worst_delta_hmd1"] = summary["worst_delta_hmd1"]
    return entry


def append_trajectory(entry: dict, path: Path) -> None:
    history: list[dict] = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"{path} is not a JSON list")
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended entry #{len(history)} to {path}", file=sys.stderr)


def check_regression(entry: dict, baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run --write-baseline first",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text())
    failures = 0
    for key in (
        "classify_tables_per_sec",
        "fused_tables_per_sec",
        "streaming_tables_per_sec",
    ):
        if key not in baseline or key not in entry:
            continue  # older baseline, or a quality-only entry
        floor = baseline[key] * REGRESSION_FLOOR
        measured = entry[key]
        if measured < floor:
            print(
                f"PERF REGRESSION: {key} {measured:.1f} is below "
                f"{REGRESSION_FLOOR:.0%} of the baseline "
                f"{baseline[key]:.1f} "
                f"(commit {baseline.get('commit', '?')[:12]})",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"throughput OK: {key} {measured:.1f} >= {floor:.1f} "
                f"({REGRESSION_FLOOR:.0%} of baseline {baseline[key]:.1f})",
                file=sys.stderr,
            )
    # The fused speedup is a same-run ratio: both sides see the same
    # machine, so the gate holds even when CI hardware drifts.
    if "fused_speedup" in entry:
        speedup = entry["fused_speedup"]
        if speedup < FUSED_SPEEDUP_FLOOR:
            print(
                f"PERF REGRESSION: fused speedup {speedup:.2f}x fell below "
                f"the {FUSED_SPEEDUP_FLOOR:.1f}x floor",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"fused speedup OK: {speedup:.2f}x >= "
                f"{FUSED_SPEEDUP_FLOOR:.1f}x",
                file=sys.stderr,
            )
    # Streaming gates: the pipelining speedup is a same-run ratio (only
    # present on multi-core machines), the windowed peak is an absolute
    # ceiling — bounded memory does not get to drift with the baseline.
    if "streaming_speedup" in entry:
        speedup = entry["streaming_speedup"]
        if speedup < STREAMING_SPEEDUP_FLOOR:
            print(
                f"PERF REGRESSION: streaming speedup {speedup:.2f}x fell "
                f"below the {STREAMING_SPEEDUP_FLOOR:.1f}x floor",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"streaming speedup OK: {speedup:.2f}x >= "
                f"{STREAMING_SPEEDUP_FLOOR:.1f}x",
                file=sys.stderr,
            )
    if "streaming_peak_rss_mb" in entry:
        peak = entry["streaming_peak_rss_mb"]
        if peak > STREAMING_PEAK_RSS_CEILING_MB:
            print(
                f"PERF REGRESSION: windowed streaming peaked at "
                f"{peak:.2f} MB, above the "
                f"{STREAMING_PEAK_RSS_CEILING_MB:.0f} MB ceiling",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"streaming memory OK: {peak:.2f} MB <= "
                f"{STREAMING_PEAK_RSS_CEILING_MB:.0f} MB",
                file=sys.stderr,
            )
    failures += _check_quality(entry, baseline)
    return 1 if failures else 0


def _check_quality(entry: dict, baseline: dict) -> int:
    """Quality gates: zero fuzz failures, ablation accuracy holds."""
    failures = 0
    for key in ("fuzz_crashes", "fuzz_divergences", "fuzz_flips"):
        if key not in entry:
            continue
        if entry[key] > 0:
            print(
                f"QUALITY REGRESSION: {entry[key]} {key.removeprefix('fuzz_')} "
                f"in the fuzz campaign (see the fuzz report artifact)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"fuzz OK: {key} == 0", file=sys.stderr)
    if "ablation_hmd1" in entry and "ablation_hmd1" in baseline:
        floor = baseline["ablation_hmd1"] * REGRESSION_FLOOR
        measured = entry["ablation_hmd1"]
        if measured < floor:
            print(
                f"QUALITY REGRESSION: ablation_hmd1 {measured:.3f} is below "
                f"{REGRESSION_FLOOR:.0%} of the baseline "
                f"{baseline['ablation_hmd1']:.3f}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"ablation accuracy OK: {measured:.3f} >= {floor:.3f}",
                file=sys.stderr,
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_trajectory.json"),
        help="trajectory JSON list to append to (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON for --check/--write-baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if classify/fused/streaming throughput fell "
        ">20%% vs baseline, the fused same-run speedup fell below "
        f"{FUSED_SPEEDUP_FLOOR:.0f}x, the streaming speedup fell below "
        f"{STREAMING_SPEEDUP_FLOOR:.1f}x, or the windowed peak rose "
        f"above {STREAMING_PEAK_RSS_CEILING_MB:.0f} MB",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the committed baseline from this measurement",
    )
    parser.add_argument(
        "--fuzz-report", metavar="PATH",
        help="fold a `repro fuzz --report` JSON into the entry",
    )
    parser.add_argument(
        "--ablation-report", metavar="PATH",
        help="fold a `repro ablate --report` JSON into the entry",
    )
    parser.add_argument(
        "--quality-only",
        action="store_true",
        help="skip the perf measurement; the entry carries only the "
        "quality keys (requires at least one report flag)",
    )
    args = parser.parse_args(argv)

    if args.quality_only and not (args.fuzz_report or args.ablation_report):
        parser.error("--quality-only needs --fuzz-report or --ablation-report")

    if args.quality_only:
        entry = {
            "commit": _git_commit(),
            "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        }
    else:
        entry = measure()
    entry.update(
        quality_entry(
            Path(args.fuzz_report) if args.fuzz_report else None,
            Path(args.ablation_report) if args.ablation_report else None,
        )
    )
    print(json.dumps(entry, indent=2))
    append_trajectory(entry, Path(args.out))
    if args.write_baseline:
        Path(args.baseline).write_text(json.dumps(entry, indent=2) + "\n")
        print(f"wrote baseline {args.baseline}", file=sys.stderr)
        return 0
    if args.check:
        return check_regression(entry, Path(args.baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
