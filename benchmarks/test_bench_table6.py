"""Bench: regenerate Table VI (simulated LLMs on CKG) and check shape.

The claims checked (Sec. IV-H/I, Table VI):

* all LLM variants are strong on HMD level 1 (>= 90%);
* accuracy collapses beyond level 1 relative to level 1;
* VMD level 3 is 0% without RAG, positive with RAG;
* RAG+GPT-4 is at least as good as GPT-4 at almost every level.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table6


def _split(cell: object) -> tuple[float | None, float | None]:
    if cell is None:
        return None, None
    text = str(cell)
    if "/" in text:
        left, right = text.split("/")
        return (
            None if left == "-" else float(left),
            None if right == "-" else float(right),
        )
    return (None if text == "-" else float(text)), None


def test_bench_table6(benchmark, warm_pipelines):
    result = run_once(benchmark, run_table6, SMOKE)
    rows = {row[0]: row for row in result.rows}

    for column in (1, 2, 3):  # gpt-3.5, gpt-4, rag+gpt-4
        hmd1, _ = _split(rows["HMD1/VMD1"][column])
        hmd2, _ = _split(rows["HMD2/VMD2"][column])
        assert hmd1 >= 90.0
        assert hmd2 <= hmd1 - 10.0  # the collapse beyond level 1

    _, vmd3_gpt35 = _split(rows["HMD3/VMD3"][1])
    _, vmd3_gpt4 = _split(rows["HMD3/VMD3"][2])
    _, vmd3_rag = _split(rows["HMD3/VMD3"][3])
    assert vmd3_gpt35 == 0.0
    assert vmd3_gpt4 == 0.0
    assert vmd3_rag > 0.0

    # RAG lifts deep HMD relative to plain GPT-4.
    hmd2_gpt4, _ = _split(rows["HMD2/VMD2"][2])
    hmd2_rag, _ = _split(rows["HMD2/VMD2"][3])
    assert hmd2_rag >= hmd2_gpt4 - 1e-9

    print()
    print(result.render())
