"""Bench: regenerate Table IV (VMD levels 2-3 centroids and deltas)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table4
from repro.experiments.centroid_tables import VMD_LEVEL_DATASETS


def test_bench_table4(benchmark, warm_pipelines):
    result = run_once(benchmark, run_table4, SMOKE)
    expected_rows = sum(len(v) for v in VMD_LEVEL_DATASETS.values())
    assert len(result.rows) == expected_rows
    levels = {row[1] for row in result.rows}
    assert levels == {"Lev. 2", "Lev. 3"}
    print()
    print(result.render())
