"""Bench: regenerate Table II (level-1 HMD centroids, six datasets)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table2


def test_bench_table2(benchmark, warm_pipelines):
    result = run_once(benchmark, run_table2, SMOKE)
    assert [row[0] for row in result.rows] == [
        "cord19", "ckg", "wdc", "cius", "saus", "pubtables",
    ]
    # Paper shape: Δ_MDE,DE (header vs data angle) is a separating
    # angle — comfortably above the data-data floor on every dataset.
    for row in result.rows:
        delta = row[3]
        assert delta is not None and delta > 10
    print()
    print(result.render())
