"""Bench: regenerate Fig. 6 (HMD detection accuracy, levels 1-5)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_figure6


def test_bench_figure6(benchmark, warm_pipelines):
    figure = run_once(benchmark, run_figure6, SMOKE)

    # All six datasets, each with exactly its profile's level count.
    assert set(figure.series) == {
        "cord19", "ckg", "wdc", "cius", "saus", "pubtables",
    }
    assert len(figure.series["ckg"]) == 5
    assert len(figure.series["wdc"]) == 1

    # Paper shape: level-1 HMD accuracy is high on every dataset, and
    # no dataset's accuracy collapses at depth.
    for dataset, bars in figure.series.items():
        values = [v for v in bars.values() if v is not None]
        assert values, dataset
        assert values[0] >= 80.0, dataset  # level 1
        assert min(values) >= 55.0, dataset

    print()
    print(figure.render())
