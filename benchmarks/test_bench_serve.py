"""Bench: the serving layer's amortization claims.

``repro batch`` loads the model once and classifies on a worker pool;
the pre-serving alternative was a shell loop of one-shot ``repro
classify`` calls, each paying model deserialization again.  The
benchmark classifies 120 small tables both ways and asserts the bulk
path wins.  A second pass over the same inputs must be nearly free —
every table is an LRU cache hit.
"""

from __future__ import annotations

import time

from repro.core.persistence import load_pipeline, save_pipeline
from repro.corpus.registry import build_corpus
from repro.serve.bulk import classify_paths, iter_table_paths, table_from_path
from repro.serve.cache import LRUCache
from repro.tables.csvio import table_to_csv

N_TABLES = 120


def _write_tables(tmp_path, pipeline_source="ckg"):
    corpus = build_corpus(pipeline_source, n_tables=N_TABLES, seed=11)
    table_dir = tmp_path / "tables"
    table_dir.mkdir()
    for i, item in enumerate(corpus):
        (table_dir / f"t{i:04d}.csv").write_text(table_to_csv(item.table))
    return table_dir


def test_bench_bulk_vs_oneshot_loop(tmp_path, warm_pipelines):
    pipeline = warm_pipelines["ckg"]
    model = save_pipeline(pipeline, tmp_path / "model.npz")
    paths = iter_table_paths([_write_tables(tmp_path)])
    assert len(paths) == N_TABLES

    # The pre-serving shape: every table pays load_pipeline again.
    start = time.perf_counter()
    for path in paths:
        load_pipeline(model).classify(table_from_path(path))
    t_oneshot = time.perf_counter() - start

    # repro batch: load once, classify on a 4-thread pool.
    warm = load_pipeline(model)
    start = time.perf_counter()
    records = classify_paths(warm, paths, workers=4)
    t_bulk = time.perf_counter() - start

    assert len(records) == N_TABLES
    assert all("error" not in r for r in records)
    assert t_bulk < t_oneshot, (
        f"bulk {t_bulk:.2f}s should beat one-shot loop {t_oneshot:.2f}s"
    )
    print(
        f"\n{N_TABLES} tables: one-shot loop {t_oneshot:.2f}s "
        f"({N_TABLES / t_oneshot:.0f}/s) vs repro batch --workers 4 "
        f"{t_bulk:.2f}s ({N_TABLES / t_bulk:.0f}/s) — "
        f"{t_oneshot / t_bulk:.1f}x speedup"
    )


def test_bench_cache_second_pass(tmp_path, warm_pipelines):
    pipeline = warm_pipelines["ckg"]
    paths = iter_table_paths([_write_tables(tmp_path)])
    cache = LRUCache(4 * N_TABLES)

    start = time.perf_counter()
    classify_paths(pipeline, paths, workers=4, cache=cache)
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    records = classify_paths(pipeline, paths, workers=4, cache=cache)
    t_warm = time.perf_counter() - start

    assert all(r["cached"] for r in records)
    assert cache.stats().hits >= N_TABLES
    assert t_warm < t_cold
    print(
        f"\ncold pass {t_cold:.2f}s, cached pass {t_warm:.2f}s "
        f"({t_cold / max(t_warm, 1e-9):.1f}x)"
    )
