"""Bench: the serving layer's amortization claims.

``repro batch`` loads the model once and classifies on a worker pool;
the pre-serving alternative was a shell loop of one-shot ``repro
classify`` calls, each paying model deserialization again.  The
benchmark classifies 120 small tables both ways and asserts the bulk
path wins.  A second pass over the same inputs must be nearly free —
every table is an LRU cache hit.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.persistence import load_pipeline, save_pipeline
from repro.corpus.registry import build_corpus
from repro.serve.bulk import classify_paths, iter_table_paths, table_from_path
from repro.serve.cache import LRUCache
from repro.tables.csvio import table_to_csv

N_TABLES = 120
USABLE_CPUS = len(os.sched_getaffinity(0))


def _write_tables(tmp_path, pipeline_source="ckg"):
    corpus = build_corpus(pipeline_source, n_tables=N_TABLES, seed=11)
    table_dir = tmp_path / "tables"
    table_dir.mkdir()
    for i, item in enumerate(corpus):
        (table_dir / f"t{i:04d}.csv").write_text(table_to_csv(item.table))
    return table_dir


def test_bench_bulk_vs_oneshot_loop(tmp_path, warm_pipelines):
    pipeline = warm_pipelines["ckg"]
    model = save_pipeline(pipeline, tmp_path / "model.npz")
    paths = iter_table_paths([_write_tables(tmp_path)])
    assert len(paths) == N_TABLES

    # The pre-serving shape: every table pays load_pipeline again.
    start = time.perf_counter()
    for path in paths:
        load_pipeline(model).classify(table_from_path(path))
    t_oneshot = time.perf_counter() - start

    # repro batch: load once, classify on a 4-thread pool.
    warm = load_pipeline(model)
    start = time.perf_counter()
    records = classify_paths(warm, paths, workers=4)
    t_bulk = time.perf_counter() - start

    assert len(records) == N_TABLES
    assert all("error" not in r for r in records)
    assert t_bulk < t_oneshot, (
        f"bulk {t_bulk:.2f}s should beat one-shot loop {t_oneshot:.2f}s"
    )
    print(
        f"\n{N_TABLES} tables: one-shot loop {t_oneshot:.2f}s "
        f"({N_TABLES / t_oneshot:.0f}/s) vs repro batch --workers 4 "
        f"{t_bulk:.2f}s ({N_TABLES / t_bulk:.0f}/s) — "
        f"{t_oneshot / t_bulk:.1f}x speedup"
    )


@pytest.mark.skipif(
    USABLE_CPUS < 4, reason=f"needs >=4 usable CPUs, have {USABLE_CPUS}"
)
def test_bench_serve_concurrent_speedup(warm_pipelines):
    """Pin the serve-path amortization: 32 concurrent clients against a
    4-worker micro-batching service must beat the serial loop by >=1.5x.
    This is the ``serve_batch_speedup`` trajectory number as a gate, so
    a batching regression fails the bench job instead of only drifting
    the series."""
    from repro.serve.batching import BatchingConfig
    from repro.serve.httpd import ClassificationService
    from repro.serve.registry import ModelRegistry

    pipeline = warm_pipelines["ckg"]
    tables = [
        item.table for item in build_corpus("ckg", n_tables=N_TABLES, seed=11)
    ]
    # Warm shared caches so both measurements see the same steady state.
    for table in tables:
        pipeline.classify(table)

    serial_best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for table in tables:
            pipeline.classify(table)
        serial_best = min(serial_best, time.perf_counter() - start)

    registry = ModelRegistry()
    registry.add("bench", pipeline)
    service = ClassificationService(
        registry,
        batching=BatchingConfig(workers=4),
        cache_capacity=0,  # measure classification, not the result cache
    )
    try:
        def _concurrent_pass() -> float:
            with ThreadPoolExecutor(max_workers=32) as clients:
                start = time.perf_counter()
                list(
                    clients.map(
                        lambda t: service.classify_table(t, model="bench"),
                        tables,
                    )
                )
                return time.perf_counter() - start

        _concurrent_pass()  # warm the worker pool
        concurrent_best = min(_concurrent_pass() for _ in range(3))
    finally:
        service.close()

    speedup = serial_best / concurrent_best
    print(
        f"\nserial {serial_best:.2f}s vs concurrent {concurrent_best:.2f}s "
        f"— {speedup:.2f}x speedup"
    )
    assert speedup >= 1.5, (
        f"serve speedup {speedup:.2f}x fell below the 1.5x floor "
        f"(serial {serial_best:.2f}s, concurrent {concurrent_best:.2f}s)"
    )


def test_bench_cache_second_pass(tmp_path, warm_pipelines):
    pipeline = warm_pipelines["ckg"]
    paths = iter_table_paths([_write_tables(tmp_path)])
    cache = LRUCache(4 * N_TABLES)

    start = time.perf_counter()
    classify_paths(pipeline, paths, workers=4, cache=cache)
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    records = classify_paths(pipeline, paths, workers=4, cache=cache)
    t_warm = time.perf_counter() - start

    assert all(r["cached"] for r in records)
    assert cache.stats().hits >= N_TABLES
    assert t_warm < t_cold
    print(
        f"\ncold pass {t_cold:.2f}s, cached pass {t_warm:.2f}s "
        f"({t_cold / max(t_warm, 1e-9):.1f}x)"
    )
