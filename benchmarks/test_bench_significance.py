"""Bench: paired significance tests for the paper's headline claims.

Checks the paper's *wording*, not just the point estimates:

* "Pytheas slightly outperforms us [at HMD level 1]" but the delta is
  *insignificant* — the paired test must not reject the null there;
* "we significantly outperformed LLMs ... up to 87% delta for VMD" —
  the VMD comparisons must reject the null decisively.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_significance


def test_bench_significance(benchmark, warm_pipelines):
    result = run_once(benchmark, run_significance, SMOKE)
    rows = {(row[0], row[1]): row for row in result.rows}

    # Level-1 losses to Pytheas/GPT-4 are small and insignificant.
    pytheas = rows[("ours vs pytheas", "HMD1")]
    assert pytheas[2] > -10.0  # delta within a few points
    assert pytheas[4] == "no"

    gpt4_hmd1 = rows[("ours vs gpt-4", "HMD1")]
    assert gpt4_hmd1[4] == "no"

    # The VMD wins are large and significant.
    for level in ("VMD1", "VMD2", "VMD3"):
        row = rows[("ours vs gpt-4", level)]
        assert row[2] > 20.0, level
        assert row[4] == "yes", level

    print()
    print(result.render())
