"""Bench: regenerate Fig. 7 (VMD identification accuracy, levels 1-3)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_figure7


def test_bench_figure7(benchmark, warm_pipelines):
    figure = run_once(benchmark, run_figure7, SMOKE)

    assert set(figure.series) == {"cord19", "ckg", "wdc", "cius", "saus"}
    assert len(figure.series["ckg"]) == 3

    # Paper shape: VMD level 1 is the easiest (>= 85% everywhere); the
    # deep-VMD corpora stay strong at level 3 (the headline claim, since
    # no baseline supports VMD at all).
    for dataset, bars in figure.series.items():
        values = list(bars.values())
        assert values[0] is not None and values[0] >= 85.0, dataset
    assert figure.series["ckg"]["VMD level 3"] >= 60.0
    assert figure.series["cius"]["VMD level 3"] >= 60.0

    print()
    print(figure.render())
