"""Bench: Sec. IV-G runtime comparison (training + per-table inference).

Checks the paper's runtime *shape*: our method's unsupervised fit is the
most expensive training step of the three, per-table inference carries
an embedding overhead over the layout-only baselines, and inference
scales roughly linearly with table count.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_runtime
from repro.experiments.runner import eval_corpus_for, fitted_pipeline


def test_bench_runtime(benchmark, warm_pipelines):
    result = run_once(benchmark, run_runtime, SMOKE)
    by_method = {row[0]: row for row in result.rows}

    ours = by_method["ours"]
    pytheas = by_method["pytheas"]
    tt = by_method["table-transformer"]

    # Training: ours (embedding fit) >> Pytheas (rule weights); TT none.
    assert ours[1] > pytheas[1]
    assert tt[1] == 0.0
    # Inference: every method completes in sane per-table time.
    for row in (ours, pytheas, tt):
        assert 0.0 < row[2] < 5.0

    print()
    print(result.render())


def test_bench_inference_scaling(benchmark, warm_pipelines):
    """Inference cost grows roughly linearly with the table count."""
    pipeline = fitted_pipeline("ckg", SMOKE)
    tables = [item.table for item in eval_corpus_for("ckg", SMOKE)]
    half, full = tables[: len(tables) // 2], tables

    start = time.perf_counter()
    for table in half:
        pipeline.classify(table)
    t_half = time.perf_counter() - start

    def classify_full():
        for table in full:
            pipeline.classify(table)

    run_once(benchmark, classify_full)
    t_full = benchmark.stats.stats.mean

    # 2x tables should cost between ~1.2x and ~4x (loose CI-safe bounds).
    assert t_full > t_half
    assert t_full < 6.0 * t_half
