"""Bench: regenerate Table V and assert the paper's headline shape.

The claims checked (Sec. IV-F / Table V):

* Pytheas slightly beats our method on HMD level 1 (delta of a few
  percent at most), but supports nothing beyond level 1;
* Table Transformer trails Pytheas at level 1 and supports no levels
  or VMD either;
* our method scores on *every* level the dataset exhibits, staying
  strong (>= 60%) down to HMD level 5 and VMD level 3.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table5


def test_bench_table5(benchmark, warm_pipelines):
    table5 = run_once(benchmark, run_table5, SMOKE)
    scores = table5.per_dataset

    for dataset, methods in scores.items():
        ours, pytheas, tt = methods["ours"], methods["pytheas"], methods["tt"]
        # Pytheas wins (or ties within noise) at level 1...
        assert pytheas.hmd[1] >= ours.hmd[1] - 6.0, dataset
        # ...and TT does not beat Pytheas there.
        assert tt.hmd[1] <= pytheas.hmd[1] + 1e-9, dataset
        # Our method produces a score for every level of the dataset.
        assert all(v is not None for v in ours.hmd.values()), dataset
        assert all(v is not None for v in ours.vmd.values()), dataset

    # Deep-hierarchy strength on the deep corpora.
    assert scores["ckg"]["ours"].hmd[5] >= 60.0
    assert scores["ckg"]["ours"].vmd[3] >= 60.0
    assert scores["cord19"]["ours"].hmd[4] >= 60.0

    print()
    print(table5.render())
