"""Benchmark fixtures.

Each benchmark regenerates one paper artifact (Tables I-VI, Figs. 5-7,
the Sec. IV-G runtime comparison) and asserts the reproduction's *shape*
against the paper.  Training is the expensive part and is not what the
benchmarks measure, so the session fixture pre-fits every pipeline once
and the benchmarks run single-round pedantic timings of the (cached)
regeneration step.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SMOKE, fitted_pipeline


DATASETS = ("cord19", "ckg", "wdc", "cius", "saus", "pubtables")


@pytest.fixture(scope="session")
def warm_pipelines():
    """Fit (and cache) every dataset's pipeline once per session."""
    return {name: fitted_pipeline(name, SMOKE) for name in DATASETS}


def run_once(benchmark, fn, *args, **kwargs):
    """Single-round pedantic run: artifact regeneration is seconds-long,
    multi-round calibration would multiply the session cost for no
    statistical gain."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
