"""Bench: regenerate Table I (centroids and deltas, HMD levels 2-5)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table1
from repro.experiments.centroid_tables import HMD_LEVEL_DATASETS


def test_bench_table1(benchmark, warm_pipelines):
    result = run_once(benchmark, run_table1, SMOKE)
    expected_rows = sum(len(v) for v in HMD_LEVEL_DATASETS.values())
    assert len(result.rows) == expected_rows

    # Paper shape: the metadata-metadata range sits below the
    # metadata-data range at every depth, and the Δ to data is larger
    # than the Δ between adjacent metadata levels for most rows.
    closer_to_meta = 0
    for row in result.rows:
        mde_de, de, mde = row[2], row[3], row[4]
        assert "to" in mde_de and "to" in de and "to" in mde
        delta_prev, delta_data = row[5], row[6]
        if delta_prev is not None and delta_data is not None:
            if delta_data > delta_prev:
                closer_to_meta += 1
    assert closer_to_meta >= len(result.rows) // 2

    print()
    print(result.render())
