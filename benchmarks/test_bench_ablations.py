"""Bench: ablations of the paper's design choices (DESIGN.md §5)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE
from repro.experiments.ablations import (
    run_ablation_aggregation,
    run_ablation_bootstrap,
    run_ablation_contrastive,
    run_ablation_embedding,
    run_ablation_hybrid,
    run_ablation_markup_noise,
    run_ablation_self_training,
    run_ablation_similarity,
)


def test_bench_ablation_similarity(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_similarity, SMOKE)
    semantic = {row[0]: row[1] for row in result.rows}
    width = {row[0]: row[2] for row in result.rows}
    # Sec. III-C's argument, as two AUCs: the angle must be clearly
    # better than chance semantically AND immune to row-width/magnitude
    # changes; Euclidean fails the width test, Jaccard the semantic one.
    assert semantic["angle"] >= 0.55
    assert width["angle"] >= 0.95
    assert width["angle"] > width["euclidean"]
    assert semantic["angle"] > semantic["jaccard"]
    # The combined (min of both) criterion picks the angle, as the paper
    # argues.
    combined = {m: min(semantic[m], width[m]) for m in semantic}
    assert combined["angle"] == max(combined.values())
    print()
    print(result.render())


def test_bench_ablation_contrastive(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_contrastive, SMOKE)
    scores = {row[0]: row for row in result.rows}
    # Both variants must work; the refinement must not wreck accuracy.
    assert scores["with contrastive"][1] >= 80.0
    assert scores["without contrastive"][1] >= 80.0
    print()
    print(result.render())


def test_bench_ablation_bootstrap(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_bootstrap, SMOKE)
    scores = {row[0]: row for row in result.rows}
    # Markup bootstrap should beat (or match) the blind fallback on the
    # deep levels, where the fallback sees no depth-2+ examples at all.
    html_deep = scores["html markup"][2]
    fallback_deep = scores["first level only"][2]
    assert html_deep is not None and fallback_deep is not None
    assert html_deep >= fallback_deep - 8.0
    print()
    print(result.render())


def test_bench_ablation_embedding(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_embedding, SMOKE)
    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"word2vec", "ppmi", "contextual", "hashed"}
    assert rows["word2vec"][1] >= 80.0  # the committed default works
    assert rows["ppmi"][1] >= 75.0  # the count-based alternative holds up
    print()
    print(result.render())


def test_bench_ablation_aggregation(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_aggregation, SMOKE)
    rows = {row[0]: row for row in result.rows}
    # Sum and mean differ only in magnitude -> nearly identical scores;
    # both must be usable.  Concat is the costlier rejected alternative.
    assert rows["sum"][1] >= 80.0
    assert abs(rows["sum"][1] - rows["mean"][1]) <= 10.0
    print()
    print(result.render())


def test_bench_ablation_markup_noise(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_markup_noise, SMOKE)
    rows = {row[0]: row for row in result.rows}
    # Sec. III-B's claim: the method survives inaccurate markup.  Level-1
    # accuracy must stay high and deep-level accuracy must degrade
    # gracefully (within 15 points of the clean-markup fit) even under
    # heavy tag corruption.
    for label in ("clean markup", "default noise", "heavy noise"):
        assert rows[label][1] >= 85.0, label
    assert rows["heavy noise"][2] >= rows["clean markup"][2] - 15.0
    print()
    print(result.render())


def test_bench_ablation_self_training(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_self_training, SMOKE)
    rows = {row[0]: row for row in result.rows}
    base, refined = rows["base fit"], rows["after self-training"]
    # The refinement must not damage level 1 and should help (or at
    # least not hurt) the deep VMD levels it was built for.
    assert refined[1] >= base[1] - 2.0
    if base[3] is not None and refined[3] is not None:
        assert refined[3] >= base[3] - 2.0
    print()
    print(result.render())


def test_bench_ablation_hybrid(benchmark, warm_pipelines):
    result = run_once(benchmark, run_ablation_hybrid, SMOKE)
    rows = {row[0]: row for row in result.rows}
    # The hybrid must not be slower than the full pipeline and must keep
    # level-1 accuracy within a few points.
    assert rows["hybrid"][3] <= rows["full pipeline"][3] * 1.2
    assert rows["hybrid"][1] >= rows["full pipeline"][1] - 10.0
    print()
    print(result.render())
