"""Bench: the multiprocess subsystem's scaling and zero-copy claims.

Three claims from the parallel subsystem are pinned here:

* ``repro batch --procs 4`` is at least 2x faster than ``--procs 1`` on
  a 120-table corpus (skipped on machines with fewer than 4 usable
  CPUs — process sharding cannot beat itself on one core);
* the output of the procs path is identical to the thread path record
  for record, modulo the volatile ``seconds``/``cached`` fields;
* a directory-store cold load is at least 5x faster than the ``.npz``
  archive on a model with real matrix weight, because ``np.load(...,
  mmap_mode="r")`` maps pages instead of decompressing them — and the
  arrays workers hold really are ``np.memmap`` views.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.persistence import (
    load_pipeline,
    save_pipeline,
    save_pipeline_dir,
)
from repro.corpus.registry import build_corpus, build_split
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.vocabularies import get_domain
from repro.parallel import ShardedPool
from repro.serve.bulk import run_bulk
from repro.tables.csvio import table_to_csv

N_TABLES = 120
USABLE_CPUS = len(os.sched_getaffinity(0))


def _fitted_pipeline():
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=get_domain("biomedical").field_map(),
        n_pairs=200,
        use_contrastive=False,
    )
    train, _ = build_split("ckg", n_train=60, n_eval=0, seed=7)
    return MetadataPipeline(config).fit(train)


def _write_tables(tmp_path):
    corpus = build_corpus("ckg", n_tables=N_TABLES, seed=11)
    table_dir = tmp_path / "tables"
    table_dir.mkdir()
    paths = []
    for i, item in enumerate(corpus):
        path = table_dir / f"t{i:04d}.csv"
        path.write_text(table_to_csv(item.table))
        paths.append(str(path))
    return paths


def _timed_pass(pool, paths):
    start = time.perf_counter()
    records = list(pool.map_paths(paths))
    elapsed = time.perf_counter() - start
    assert len(records) == len(paths)
    assert all("error" not in r for r in records)
    return elapsed


@pytest.mark.skipif(
    USABLE_CPUS < 4, reason=f"needs >=4 usable CPUs, have {USABLE_CPUS}"
)
def test_bench_procs_scaling(tmp_path):
    """batch --procs 4 must deliver >=2x bulk throughput over --procs 1."""
    model = save_pipeline_dir(_fitted_pipeline(), tmp_path / "model")
    paths = _write_tables(tmp_path)

    timings = {}
    for procs in (1, 4):
        # cache_capacity=0: measure classification, not worker LRU hits.
        with ShardedPool(
            {"m": model}, procs=procs, default="m", cache_capacity=0
        ) as pool:
            _timed_pass(pool, paths)  # warm imports and model pages
            timings[procs] = min(_timed_pass(pool, paths) for _ in range(3))

    speedup = timings[1] / timings[4]
    assert speedup >= 2.0, (
        f"4 procs {timings[4]:.3f}s vs 1 proc {timings[1]:.3f}s — "
        f"only {speedup:.2f}x"
    )
    print(
        f"\n{N_TABLES} tables: 1 proc {N_TABLES / timings[1]:.0f}/s, "
        f"4 procs {N_TABLES / timings[4]:.0f}/s — {speedup:.2f}x"
    )


def test_bench_procs_output_matches_thread_path(tmp_path):
    """The procs path emits the same records as the thread path."""
    pipeline = _fitted_pipeline()
    model = save_pipeline_dir(pipeline, tmp_path / "model")
    paths = _write_tables(tmp_path)

    out_procs = tmp_path / "procs.jsonl"
    out_threads = tmp_path / "threads.jsonl"
    run_bulk(model, paths, procs=2, cache_capacity=0, out=out_procs)
    run_bulk(model, paths, workers=4, cache_capacity=0, out=out_threads)

    def normalize(path):
        records = [json.loads(l) for l in path.read_text().splitlines()]
        for record in records:
            record.pop("seconds", None)  # timing is volatile by nature
            record.pop("cached", None)
        return records

    assert normalize(out_procs) == normalize(out_threads)


def test_bench_dir_store_cold_load(tmp_path):
    """Directory-store cold load >=5x faster than .npz on a heavy model.

    The hashed bench pipeline has almost no array weight, so the claim
    is measured on a model whose embedding matrices carry ~40MB — the
    regime the directory store exists for.  The arrays are random
    (incompressible), which is also the realistic case for trained
    float weights.
    """
    pipeline = _fitted_pipeline()
    rng = np.random.default_rng(0)
    heavy = rng.standard_normal((40_000, 64))
    pipeline.row_centroids = pipeline.row_centroids.__class__(
        mde=pipeline.row_centroids.mde,
        de=pipeline.row_centroids.de,
        mde_de=pipeline.row_centroids.mde_de,
        meta_ref=heavy,
        data_ref=rng.standard_normal((40_000, 64)),
        level_stats=pipeline.row_centroids.level_stats,
        n_tables=pipeline.row_centroids.n_tables,
    )

    npz = save_pipeline(pipeline, tmp_path / "model.npz")
    store = save_pipeline_dir(pipeline, tmp_path / "model")

    def best_of(loader, reps=3):
        return min(
            _timed_call(loader) for _ in range(reps)
        )

    def _timed_call(loader):
        start = time.perf_counter()
        loaded = loader()
        elapsed = time.perf_counter() - start
        assert loaded.is_fitted
        return elapsed

    t_npz = best_of(lambda: load_pipeline(npz))
    t_dir = best_of(lambda: load_pipeline(store))

    loaded = load_pipeline(store)
    assert isinstance(loaded.row_centroids.meta_ref, np.memmap)

    ratio = t_npz / t_dir
    assert ratio >= 5.0, (
        f"dir load {t_dir * 1000:.1f}ms vs npz {t_npz * 1000:.1f}ms — "
        f"only {ratio:.1f}x"
    )
    print(
        f"\ncold load: npz {t_npz * 1000:.1f}ms, "
        f"dir {t_dir * 1000:.1f}ms — {ratio:.1f}x"
    )


def test_bench_workers_hold_memmap_views(tmp_path):
    """Every pool worker opens the store with mmap_mode='r'."""
    model = save_pipeline_dir(_fitted_pipeline(), tmp_path / "model")
    with ShardedPool({"m": model}, procs=2, default="m") as pool:
        for report in pool.probe_workers():
            assert report["m"]["meta_ref_memmap"] is True
            assert report["m"]["data_ref_memmap"] is True
