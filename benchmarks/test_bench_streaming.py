"""Bench: the streaming ingestion plane's pipelining and memory claims.

Two claims from the connectors subsystem are pinned here:

* the pipelined parse->pack->classify executor (``repro batch``'s
  default path) is at least :data:`STREAMING_SPEEDUP_FLOOR` x faster
  than the strictly sequential parse-then-classify loop on a 120-file
  corpus (skipped on machines with fewer than 4 usable CPUs — there is
  nothing to overlap on one core);
* windowed classification of a table ~25x the window budget stays under
  a pinned tracemalloc ceiling while producing label runs that tile the
  full (never materialized) row axis — and on a table that *fits* the
  window, its labels are byte-identical to the in-memory path.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.connectors.pipelined import run_streaming
from repro.connectors.sources import build_sources
from repro.connectors.window import (
    CsvRowStream,
    ListRowStream,
    WindowConfig,
    classify_windowed,
)
from repro.core.pipeline import MetadataPipeline, PipelineConfig
from repro.corpus.registry import build_corpus, build_split
from repro.corpus.vocabularies import get_domain
from repro.serve.bulk import classify_paths
from repro.tables.csvio import table_to_csv

N_TABLES = 120
USABLE_CPUS = len(os.sched_getaffinity(0))

#: The pipelined executor must beat the sequential loop by this much.
STREAMING_SPEEDUP_FLOOR = 1.3

#: Peak traced allocation allowed while classifying the big windowed
#: table.  The full grid would cost >25 MB; the window path peaks
#: ~6 MB (the 192-row window's classification dominates).
WINDOWED_PEAK_CEILING_BYTES = 12 * 1024 * 1024

BIG_ROWS = 50_000
BIG_COLS = 8


def _fitted_pipeline():
    config = PipelineConfig(
        embedding="hashed",
        hashed_fields=get_domain("biomedical").field_map(),
        n_pairs=200,
        use_contrastive=False,
    )
    train, _ = build_split("ckg", n_train=60, n_eval=0, seed=7)
    return MetadataPipeline(config).fit(train)


def _write_tables(tmp_path):
    corpus = build_corpus("ckg", n_tables=N_TABLES, seed=11)
    table_dir = tmp_path / "tables"
    table_dir.mkdir()
    paths = []
    for i, item in enumerate(corpus):
        path = table_dir / f"t{i:04d}.csv"
        path.write_text(table_to_csv(item.table))
        paths.append(str(path))
    return paths


def _sequential_pass(pipeline, paths):
    start = time.perf_counter()
    records = classify_paths(pipeline, paths, workers=1)
    elapsed = time.perf_counter() - start
    assert len(records) == len(paths)
    return elapsed


def _streaming_pass(pipeline, paths):
    start = time.perf_counter()
    records = run_streaming(
        pipeline, build_sources(paths), parse_workers=4, chunk_size=16
    )
    elapsed = time.perf_counter() - start
    assert len(records) == len(paths)
    assert all("error" not in r for r in records)
    return elapsed


@pytest.mark.skipif(
    USABLE_CPUS < 4, reason=f"needs >=4 usable CPUs, have {USABLE_CPUS}"
)
def test_bench_streaming_pipelining(tmp_path):
    """Pipelined parse/classify overlap must deliver >=1.3x."""
    pipeline = _fitted_pipeline()
    paths = _write_tables(tmp_path)

    _streaming_pass(pipeline, paths)  # warm imports and token caches
    sequential = min(_sequential_pass(pipeline, paths) for _ in range(3))
    streaming = min(_streaming_pass(pipeline, paths) for _ in range(3))

    speedup = sequential / streaming
    print(
        f"\nstreaming: sequential {N_TABLES / sequential:.1f} tables/s, "
        f"pipelined {N_TABLES / streaming:.1f} tables/s "
        f"({speedup:.2f}x)"
    )
    assert speedup >= STREAMING_SPEEDUP_FLOOR, (
        f"pipelined streaming only {speedup:.2f}x over sequential; "
        f"the floor is {STREAMING_SPEEDUP_FLOOR:.1f}x"
    )


def _write_big_csv(path):
    with path.open("w") as f:
        f.write(",".join(f"col{c}" for c in range(BIG_COLS)) + "\n")
        for r in range(BIG_ROWS - 1):
            f.write(",".join(f"value-{r}-{c}" for c in range(BIG_COLS)) + "\n")
    return path


def test_bench_windowed_memory_bound(tmp_path):
    """Windowed classify of a 50k-row CSV under a pinned heap ceiling."""
    pipeline = _fitted_pipeline()
    big = _write_big_csv(tmp_path / "big.csv")
    config = WindowConfig.from_budget(64)

    # Warm lazy imports and caches outside the measured region.
    classify_windowed(pipeline, CsvRowStream(big), config)

    tracemalloc.start()
    try:
        result = classify_windowed(pipeline, CsvRowStream(big), config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    record = result.record
    assert record["n_rows"] == BIG_ROWS
    assert record["window_rows"] == 192
    runs = record["row_label_runs"]
    assert runs[0][0] == 0 and runs[-1][1] == BIG_ROWS
    assert sum(stop - start for start, stop, _ in runs) == BIG_ROWS
    print(f"\nwindowed peak: {peak / 1e6:.2f} MB over {BIG_ROWS} rows")
    assert peak < WINDOWED_PEAK_CEILING_BYTES, (
        f"windowed classify peaked at {peak / 1e6:.1f} MB; the ceiling "
        f"is {WINDOWED_PEAK_CEILING_BYTES / 1e6:.0f} MB"
    )


def test_bench_windowed_exactness(tmp_path):
    """A window-sized table's labels are byte-identical to in-memory."""
    pipeline = _fitted_pipeline()
    _, tables = build_split("ckg", n_train=0, n_eval=8, seed=23)
    for item in tables:
        stream = ListRowStream(
            [list(row) for row in item.table.rows], name=item.table.name
        )
        windowed = classify_windowed(
            pipeline, stream, WindowConfig.from_budget(256)
        )
        full = pipeline.classify(item.table)
        assert windowed.record["window_exact"]
        a = json.dumps([str(x) for x in windowed.annotation.row_labels])
        b = json.dumps([str(x) for x in full.row_labels])
        assert a.encode() == b.encode()
