"""Bench: regenerate Table III (level-1 VMD centroids, five datasets)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import SMOKE, run_table3


def test_bench_table3(benchmark, warm_pipelines):
    result = run_once(benchmark, run_table3, SMOKE)
    assert len(result.rows) == 5
    assert all(row[0] != "pubtables" for row in result.rows)
    for row in result.rows:
        assert row[3] is not None  # Δ_MDE,DE estimated everywhere
    print()
    print(result.render())
